package sw

import (
	"fmt"

	"repro/internal/mesh"
	"repro/internal/par"
)

// Fast-mode execution: the whole RK-4 step computed in float32 (paper
// Figure 6, the "mixed/reduced precision" rungs of the acceleration ladder).
// Halving the element size halves the bytes every kernel streams, which is
// the whole game for this bandwidth-bound solver; the price is a relative
// error of a few 1e-7 per step against the float64 trajectory, held to a
// documented band by the conformance harness (internal/conform, strategy
// "fast32-*", Strategy.RelBand).
//
// Design: the runner owns a complete float32 working set — state, provis,
// accumulator, tendencies, diagnostics, plus float32 copies of the mesh
// constants and the CSR-packed gather weights. A step
//
//  1. loads h/u (and the bottom topography) from the solver's float64 State,
//  2. recomputes the diagnostics from that loaded state, and
//  3. runs the four RK stages with the same fusion shape as the compiled
//     float64 plan, committing into the float32 state,
//  4. stores h/u and the invariant diagnostics (ke, h_vertex, pv_vertex)
//     back to the float64 arrays.
//
// The float32 -> float64 store is exact and the float64 -> float32 load
// rounds once, so the float64 State remains the single source of truth:
// checkpointing, ensemble activation and external state edits all keep
// working, at the cost of one extra diagnostics solve per step (5 instead
// of 4). Every op is followed by a barrier — the schedule is deliberately
// simpler than the plan's dataflow-minimized one; with ~50 cheap barriers
// against halved memory traffic the trade is easily won.
type Fast32Runner struct {
	s    *Solver
	pool *par.Pool
	// cfg snapshots the configuration the ops were specialized on; Step
	// refuses the fast path if the solver's Cfg has since been mutated.
	cfg Config

	// csr is the packed, index-validated mesh adjacency (see mesh.PackCSR);
	// its pack-time validation licenses the unchecked loads in
	// fast32_kernels.go, exactly as for the float64 plan kernels.
	csr *mesh.CSR

	rkA, rkB [4]float32

	// float32 mesh constants and hoisted gather weights. Each entry is the
	// float64 value (or float64 product, for the weight tables) rounded once.
	wA1, wA3, wKite, wE, wEdge []float32
	areaCell, dcEdge, dvEdge   []float32
	areaTri, fVertex, kite     []float32
	b                          []float32

	// float32 working set (cells / edges / vertices).
	h0, hP, hN, tendH   []float32
	ke, div, d2, pvCell []float32
	u0, uP, uN, tendU   []float32
	hEdge, v, pvEdge    []float32
	vort, hVert, pvVert []float32

	ops []f32op
	// exec is the bound method value handed to Pool.Region, created once so
	// a step allocates nothing.
	exec       func(t *par.Team)
	rangeCache map[int][][2]int32
}

// f32op is one entry of the fast-mode schedule.
type f32op struct {
	run     func(lo, hi int)
	ranges  [][2]int32
	barrier bool
}

// NewFast32Runner builds the float32 fast-mode runner for s. The pool
// provides the worker team (nil means serial); the caller keeps ownership.
func NewFast32Runner(s *Solver, pool *par.Pool) (*Fast32Runner, error) {
	if pool == nil {
		pool = par.NewPool(1)
	}
	r := &Fast32Runner{s: s, pool: pool, cfg: s.Cfg, rangeCache: map[int][][2]int32{}}
	csr, err := s.M.PackCSR()
	if err != nil {
		return nil, fmt.Errorf("sw: packing mesh adjacency: %w", err)
	}
	r.csr = csr
	if err := checkSolverShapes(s, csr); err != nil {
		return nil, fmt.Errorf("sw: fast32 shapes: %w", err)
	}
	for i := range r.rkA {
		r.rkA[i] = float32(s.rkA[i])
		r.rkB[i] = float32(s.rkB[i])
	}
	r.buildTables()
	r.compileOps()
	r.exec = r.run
	return r, nil
}

// MustNewFast32Runner is NewFast32Runner panicking on error.
func MustNewFast32Runner(s *Solver, pool *par.Pool) *Fast32Runner {
	r, err := NewFast32Runner(s, pool)
	if err != nil {
		panic(err)
	}
	return r
}

// buildTables allocates the float32 working set and converts the mesh
// constants and hoisted weights. Products (signed edge lengths, quadrature
// weights) are formed in float64 first — reproducing the float64 kernels'
// constant folding — and rounded once.
func (r *Fast32Runner) buildTables() {
	s := r.s
	m := s.M
	nc, ne, nv := m.NCells, m.NEdges, m.NVertices

	alloc32 := func(n int) []float32 { return mesh.AlignedFloat32(n) }
	cvt := func(src []float64, n int) []float32 {
		dst := alloc32(n)
		for i := 0; i < n; i++ {
			dst[i] = float32(src[i])
		}
		return dst
	}

	r.areaCell = cvt(m.AreaCell, nc)
	r.dcEdge = cvt(m.DcEdge, ne)
	r.dvEdge = cvt(m.DvEdge, ne)
	r.areaTri = cvt(m.AreaTriangle, nv)
	r.fVertex = cvt(m.FVertex, nv)
	r.kite = cvt(m.KiteAreasOnVertex, nv*mesh.VertexDegree)
	r.wEdge = cvt(r.csr.EdgeWeights, len(r.csr.EdgeWeights))

	nnz := len(r.csr.CellEdges)
	r.wA1 = alloc32(nnz)
	r.wA3 = alloc32(nnz)
	r.wKite = alloc32(nnz)
	for cell := 0; cell < nc; cell++ {
		lo, hi := r.csr.CellRow(cell)
		base := cell * mesh.MaxEdges
		for j := 0; j < hi-lo; j++ {
			e := m.EdgesOnCell[base+j]
			r.wA1[lo+j] = float32(s.signCell[base+j] * m.DvEdge[e])
			r.wA3[lo+j] = float32(0.25 * m.DcEdge[e] * m.DvEdge[e])
			r.wKite[lo+j] = float32(s.kiteOnCell[base+j])
		}
	}
	r.wE = alloc32(nv * mesh.VertexDegree)
	for v := 0; v < nv; v++ {
		base := v * mesh.VertexDegree
		for j := 0; j < mesh.VertexDegree; j++ {
			e := m.EdgesOnVertex[base+j]
			r.wE[base+j] = float32(s.signVertex[base+j] * m.DcEdge[e])
		}
	}

	r.b = alloc32(nc)
	r.h0, r.hP, r.hN, r.tendH = alloc32(nc), alloc32(nc), alloc32(nc), alloc32(nc)
	r.ke, r.div, r.d2, r.pvCell = alloc32(nc), alloc32(nc), alloc32(nc), alloc32(nc)
	r.u0, r.uP, r.uN, r.tendU = alloc32(ne), alloc32(ne), alloc32(ne), alloc32(ne)
	r.hEdge, r.v, r.pvEdge = alloc32(ne), alloc32(ne), alloc32(ne)
	r.vort, r.hVert, r.pvVert = alloc32(nv), alloc32(nv), alloc32(nv)
}

// compileOps lowers the fast-mode step into the flat op list run executes:
// load, entry diagnostics, four fused RK stages (each with its own
// diagnostics solve), store. Every op gets a barrier (the region join covers
// the last), so no dataflow analysis is needed — correctness is by
// construction, program order.
func (r *Fast32Runner) compileOps() {
	m := r.s.M
	cfg := r.cfg
	nc, ne, nv := m.NCells, m.NEdges, m.NVertices

	add := func(n int, run func(lo, hi int)) {
		r.ops = append(r.ops, f32op{run: run, ranges: r.ranges(n), barrier: true})
	}
	// diag appends the compute_solve_diagnostics sequence reading (hs, us).
	// The op set mirrors the plan's liveness elision: divergence only feeds
	// viscosity, v and pv_cell only feed the APVM correction, and the
	// cell-averaged vorticity (H2) has no consumer at all.
	diag := func(hs, us []float32) {
		if cfg.HighOrderThickness {
			add(nc, r.f32C1(hs))
			add(ne, r.f32D2(hs))
		} else {
			add(ne, r.f32D1(hs))
		}
		add(nv, r.f32E(us))
		if cfg.Viscosity != 0 {
			add(nc, r.f32A2(us))
		}
		add(nc, r.f32A3(us))
		if cfg.APVM != 0 {
			add(ne, r.f32F(us))
		}
		add(nv, r.f32G(hs))
		if cfg.APVM != 0 {
			add(nc, r.f32C2())
		}
		add(ne, r.f32H1())
		if cfg.APVM != 0 {
			add(ne, r.f32B2(us))
		}
	}

	add(nc, r.ldCells)
	add(ne, r.ldEdges)
	diag(r.h0, r.u0)
	for stage := 0; stage < 4; stage++ {
		add(nc, r.f32TendH(stage))
		add(ne, r.f32TendU(stage))
		if stage == 1 || stage == 2 {
			add(nc, r.f32X2(stage))
			add(ne, r.f32X3(stage))
		}
		if stage < 3 {
			diag(r.hP, r.uP)
		} else {
			diag(r.h0, r.u0)
		}
	}
	add(nc, r.stCells)
	add(ne, r.stEdges)
	add(nv, r.stVerts)
	r.ops[len(r.ops)-1].barrier = false // the region join is the last barrier
}

// --- load/store ops (ordinary indexing is fine here: linear loops over the
// solver's float64 arrays, outside the bounds-check gate) -------------------

func (r *Fast32Runner) ldCells(lo, hi int) {
	h, b := r.s.State.H, r.s.B
	for c := lo; c < hi; c++ {
		r.h0[c] = float32(h[c])
		r.b[c] = float32(b[c])
	}
}

func (r *Fast32Runner) ldEdges(lo, hi int) {
	u := r.s.State.U
	for e := lo; e < hi; e++ {
		r.u0[e] = float32(u[e])
	}
}

func (r *Fast32Runner) stCells(lo, hi int) {
	h, ke := r.s.State.H, r.s.Diag.KE
	for c := lo; c < hi; c++ {
		h[c] = float64(r.h0[c])
		ke[c] = float64(r.ke[c])
	}
}

func (r *Fast32Runner) stEdges(lo, hi int) {
	u := r.s.State.U
	for e := lo; e < hi; e++ {
		u[e] = float64(r.u0[e])
	}
}

func (r *Fast32Runner) stVerts(lo, hi int) {
	hv, pv := r.s.Diag.HVertex, r.s.Diag.PVVertex
	for v := lo; v < hi; v++ {
		hv[v] = float64(r.hVert[v])
		pv[v] = float64(r.pvVert[v])
	}
}

// run executes the schedule as one worker of the region.
func (r *Fast32Runner) run(t *par.Team) {
	for i := range r.ops {
		op := &r.ops[i]
		rg := op.ranges[t.ID]
		if rg[0] < rg[1] {
			op.run(int(rg[0]), int(rg[1]))
		}
		if op.barrier {
			t.Barrier()
		}
	}
}

// step advances one RK-4 time step in float32 (called from Solver.Step when
// the fast path applies).
func (r *Fast32Runner) step() {
	s := r.s
	span := s.Trace.StartSpan("rk4_step_fast32")
	s.cur = s.State
	r.pool.Region(r.exec)
	s.StepCount++
	s.Time += s.Cfg.Dt
	s.stepsCounter.Inc()
	span.End()
}

// RunKernel implements Runner for the non-step paths (Init, direct kernel
// calls): full float64 through the pooled per-kernel regions. Only Step
// itself takes the float32 path.
func (r *Fast32Runner) RunKernel(k *Kernel) {
	PoolRunner{Pool: r.pool}.RunKernel(k)
}

func (r *Fast32Runner) ranges(n int) [][2]int32 {
	if rs, ok := r.rangeCache[n]; ok {
		return rs
	}
	rs := alignedRanges(n, r.pool.Workers())
	r.rangeCache[n] = rs
	return rs
}
