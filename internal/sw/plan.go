package sw

import (
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/dataflow"
	"repro/internal/mesh"
	"repro/internal/par"
	"repro/internal/pattern"
)

// This file implements data-flow-compiled step execution: at construction,
// the RK-4 step's kernel/pattern sequence is lowered through the data-flow
// graph (package dataflow) into a flat schedule of (op, range, barrier?)
// entries, executed inside ONE long-lived parallel region per step. The
// compiler goes beyond the per-kernel region fusion of PoolRunner in four
// ways:
//
//  1. Fusion: the RK substep/accumulate updates (X2..X5) are folded into the
//     tendency loops wherever the data flow proves the combined loop is
//     race-free, and the step-entry Provis/next copies are absorbed into
//     stage 0's initialization forms (hn = h0 + b*t instead of copy-then-add).
//  2. Liveness: a backward pass over the whole four-stage program elides ops
//     whose outputs are never consumed before being overwritten (divergence
//     and cell-averaged vorticity under default config, the velocity
//     reconstruction, and most of solve_diagnostics under AdvectionOnly).
//  3. Barrier minimization: dataflow.LevelsBy with a locality predicate
//     places a barrier only at true dependency frontiers — an edge whose
//     consumer reads only the element its own worker produced (pointwise
//     consumer, same index space, stable static chunking) needs no barrier.
//  4. Allocation-free dispatch: op closures, worker ranges and the region
//     callback are all precompiled, so a step performs zero allocations and
//     zero closure churn.
//
// Every schedule is verified at compile time: the flattened order must pass
// Graph.ValidateOrder, and every non-local dependency edge must be separated
// by at least one barrier (checked both with and without the optional
// PostSubstep hook in the schedule).

// stepRoots are the variables that must be correct after a plan step: the
// accepted prognostic state plus the diagnostics ComputeInvariants reads.
// Everything else either feeds the next step (kept live by the program's
// own upward-exposed reads) or is recomputed before use.
var stepRoots = []string{"h0", "u0", "ke", "pv_vertex", "h_vertex"}

// opSpec is a schedulable operation before compilation: def/use metadata for
// the data-flow graph plus the compiled range closure.
type opSpec struct {
	id     string
	stage  int
	n      int
	shape  pattern.Shape
	out    pattern.PointType
	reads  []string
	writes []string
	run    func(lo, hi int)
	// hook marks the serial PostSubstep slot: executed by worker 0 only,
	// guarded at runtime on s.PostSubstep != nil, and never local to any
	// dependency edge.
	hook bool
}

func (sp opSpec) instance() pattern.Instance {
	return pattern.Instance{
		ID:     sp.id,
		Kernel: fmt.Sprintf("stage%d", sp.stage),
		Shape:  sp.shape,
		Out:    sp.out,
		Reads:  sp.reads,
		Writes: sp.writes,
	}
}

// planOp is one compiled schedule entry. post and wait mark the overlay's
// exchange ops (see overlap.go): post initiates the halo exchange on worker
// 0 with NO barrier (interior compute proceeds immediately), wait completes
// it on worker 0 with an unconditional barrier after.
type planOp struct {
	id      string
	stage   int
	run     func(lo, hi int)
	hook    bool
	post    bool
	wait    bool
	ranges  [][2]int32
	barrier bool
}

// plan is a compiled schedule executed inside one parallel region.
type plan struct {
	s   *Solver
	ops []planOp
	// ov is set on overlaid schedules only (see overlap.go); post/wait ops
	// call into it.
	ov *Overlap
	// exec is the bound method value handed to Pool.Region, created once so
	// launching the region allocates nothing.
	exec func(t *par.Team)
	// Compilation artifacts kept for structural tests: the kept specs in
	// program order, the execution order (positions into specs), and the
	// effective barrier flag per execution position.
	specs        []opSpec
	order        []int
	barrierAfter []bool
	barriers     int
}

// run executes the schedule as one worker of the region. Every worker
// executes the same op sequence over its own precomputed ranges; barriers
// synchronize exactly at the compiled frontiers. Hook slots run on worker 0
// with a barrier after — both are skipped when no hook is installed, which
// is safe because the preceding frontier's barrier already ordered the
// hook's inputs.
func (p *plan) run(t *par.Team) {
	s := p.s
	ops := p.ops
	for i := range ops {
		op := &ops[i]
		if op.hook {
			if hook := s.PostSubstep; hook != nil {
				if t.ID == 0 {
					st := s.Provis
					if op.stage == 3 {
						st = s.State
					}
					hook(op.stage, st)
				}
				t.Barrier()
			}
			continue
		}
		if op.post || op.wait {
			st := s.Provis
			if op.stage == 3 {
				st = s.State
			}
			if op.post {
				// No barrier: the previous frontier already ordered the
				// exchanged fields' writes, and interior ops never touch
				// them, so every worker proceeds while worker 0 packs.
				if t.ID == 0 {
					p.ov.Post(op.stage, st)
				}
				continue
			}
			if t.ID == 0 {
				p.ov.Wait(op.stage, st)
			}
			t.Barrier()
			continue
		}
		r := op.ranges[t.ID]
		if r[0] < r[1] {
			op.run(int(r[0]), int(r[1]))
		}
		if op.barrier {
			t.Barrier()
		}
	}
}

// PlanRunner is a Runner that advances whole RK-4 steps through a compiled
// execution plan (Step() takes the plan path when a PlanRunner is attached
// and no tracers are registered). For anything else — Init, tracer runs,
// direct kernel invocations — RunKernel executes the kernel's original
// patterns through a per-kernel compiled schedule with no elision, so all
// diagnostics (including ones the step plan elides) are computed there.
//
// A plan step maintains the prognostic state, the invariant diagnostics
// (ke, h_vertex, pv_vertex) and everything the next step consumes; purely
// derived fields with no consumer (divergence and vorticity_cell under the
// default configuration, the velocity reconstruction) go stale. Checkpoint,
// conformance and invariant monitoring never read them; call Init to refresh
// them if needed.
type PlanRunner struct {
	s    *Solver
	pool *par.Pool
	// cfg snapshots the configuration the plan was specialized on; Step
	// refuses the plan path if the solver's Cfg has since been mutated
	// (e.g. a test-case setup flipping AdvectionOnly after construction).
	cfg Config

	// csr is the packed, index-validated image of the mesh adjacency the
	// compiled kernels gather through (see mesh.PackCSR); the pack-time
	// validation is what licenses their unchecked loads.
	csr *mesh.CSR

	// Hoisted gather weights, packed by csr.CellPtr (wA1, wA3, wKite) and
	// by vertex degree (wE); see buildWeights.
	wA1, wA3, wKite, wE []float64

	// ov is non-nil on runners built by NewOverlapPlanRunner: the step plan
	// carries post/wait exchange ops instead of hook slots, and Step takes
	// the plan path only while s.PostSubstep stays nil.
	ov *Overlap

	stepPlan    *plan
	kernelPlans map[*Kernel]*plan
	rangeCache  map[int][][2]int32
	elided      []string

	// tasks is non-nil on runners built by NewTaskPlanRunner /
	// NewOverlapTaskPlanRunner: the step plan lowered once more, from a
	// level-barrier schedule to a dependency-counted task graph
	// (taskplan.go), which step() then runs instead of the barrier region.
	tasks *par.TaskGraph
}

// planCompiles counts NewPlanRunner compilations process-wide. Ensemble
// serving rides on the guarantee that K members share ONE compiled plan;
// tests pin that by asserting this counter's delta.
var planCompiles atomic.Int64

// PlanCompileCount returns the number of plan compilations performed by
// this process so far (monotone; read before/after an operation to count
// the compilations it triggered).
func PlanCompileCount() int64 { return planCompiles.Load() }

// NewPlanRunner compiles the execution plan for s. The pool provides the
// worker team (nil means serial); the caller keeps ownership of it. The
// returned runner is specific to s and to the pool's worker count.
func NewPlanRunner(s *Solver, pool *par.Pool) (*PlanRunner, error) {
	planCompiles.Add(1)
	if pool == nil {
		pool = par.NewPool(1)
	}
	r := &PlanRunner{s: s, pool: pool, cfg: s.Cfg, rangeCache: map[int][][2]int32{}}
	csr, err := s.M.PackCSR()
	if err != nil {
		return nil, fmt.Errorf("sw: packing mesh adjacency: %w", err)
	}
	r.csr = csr
	if err := checkSolverShapes(s, csr); err != nil {
		return nil, fmt.Errorf("sw: plan shapes: %w", err)
	}
	r.buildWeights()

	specs := r.stepSpecs()
	kept, elided := elideDead(specs, stepRoots)
	r.elided = elided
	p, err := r.compile(splitStages(kept))
	if err != nil {
		return nil, fmt.Errorf("sw: step plan: %w", err)
	}
	r.stepPlan = p

	r.kernelPlans = make(map[*Kernel]*plan, len(s.kernelOrder))
	for _, k := range s.kernelOrder {
		kp, err := r.compile([][]opSpec{kernelSpecs(k)})
		if err != nil {
			return nil, fmt.Errorf("sw: kernel plan %s: %w", k.Name, err)
		}
		r.kernelPlans[k] = kp
	}
	return r, nil
}

// MustNewPlanRunner is NewPlanRunner panicking on error.
func MustNewPlanRunner(s *Solver, pool *par.Pool) *PlanRunner {
	r, err := NewPlanRunner(s, pool)
	if err != nil {
		panic(err)
	}
	return r
}

// Elided returns the Table I ops the liveness pass removed from the step
// plan, sorted.
func (r *PlanRunner) Elided() []string {
	out := append([]string(nil), r.elided...)
	sort.Strings(out)
	return out
}

// Barriers returns the number of unconditional barriers in one plan step.
func (r *PlanRunner) Barriers() int { return r.stepPlan.barriers }

// OpIDs returns the step schedule in execution order.
func (r *PlanRunner) OpIDs() []string {
	out := make([]string, len(r.stepPlan.ops))
	for i, op := range r.stepPlan.ops {
		out[i] = op.id
	}
	return out
}

// buildWeights precomputes the hoisted gather weights, packed by the CSR
// row pointers so the hot loops stream them stride-1. wA1[k] is the signed
// edge length s.signCell*DvEdge shared by A1 and A2; wA3 is A3's quadrature
// weight (0.25*Dc)*Dv; wKite is C2's kite fraction; wE is E's signed
// dual-edge length. Each stored product reproduces the original
// left-associated prefix, so multiplying by the remaining factors gives the
// original rounding exactly. (Ordinary checked indexing is fine here — this
// is compile-time setup, not a hot loop; plan_kernels.go must stay free of
// slice indexing for the bounds-check gate.)
func (r *PlanRunner) buildWeights() {
	s := r.s
	m := s.M
	c := r.csr
	nnz := len(c.CellEdges)
	r.wA1 = mesh.AlignedFloat64(nnz)
	r.wA3 = mesh.AlignedFloat64(nnz)
	r.wKite = mesh.AlignedFloat64(nnz)
	for cell := 0; cell < m.NCells; cell++ {
		lo, hi := c.CellRow(cell)
		base := cell * mesh.MaxEdges
		for j := 0; j < hi-lo; j++ {
			e := m.EdgesOnCell[base+j]
			r.wA1[lo+j] = s.signCell[base+j] * m.DvEdge[e]
			r.wA3[lo+j] = 0.25 * m.DcEdge[e] * m.DvEdge[e]
			r.wKite[lo+j] = s.kiteOnCell[base+j]
		}
	}
	r.wE = mesh.AlignedFloat64(m.NVertices * mesh.VertexDegree)
	for v := 0; v < m.NVertices; v++ {
		base := v * mesh.VertexDegree
		for j := 0; j < mesh.VertexDegree; j++ {
			e := m.EdgesOnVertex[base+j]
			r.wE[base+j] = s.signVertex[base+j] * m.DcEdge[e]
		}
	}
}

// checkSolverShapes asserts, once at compile time, that every array the
// compiled kernels (plan_kernels.go, fast32_kernels.go) access through
// unchecked views covers its index space. Together with the CSR pack-time
// column validation this is the safety argument for the bounds-check-free
// hot loops.
func checkSolverShapes(s *Solver, csr *mesh.CSR) error {
	m := s.M
	nc, ne, nv := m.NCells, m.NEdges, m.NVertices
	check := func(name string, got, want int) error {
		if got < want {
			return fmt.Errorf("%s has %d elements, need %d", name, got, want)
		}
		return nil
	}
	for _, c := range []struct {
		name string
		got  int
		want int
	}{
		{"State.H", len(s.State.H), nc}, {"State.U", len(s.State.U), ne},
		{"Provis.H", len(s.Provis.H), nc}, {"Provis.U", len(s.Provis.U), ne},
		{"next.H", len(s.next.H), nc}, {"next.U", len(s.next.U), ne},
		{"Tend.H", len(s.Tend.H), nc}, {"Tend.U", len(s.Tend.U), ne},
		{"B", len(s.B), nc},
		{"Diag.HEdge", len(s.Diag.HEdge), ne}, {"Diag.KE", len(s.Diag.KE), nc},
		{"Diag.PVEdge", len(s.Diag.PVEdge), ne}, {"Diag.V", len(s.Diag.V), ne},
		{"Diag.Divergence", len(s.Diag.Divergence), nc},
		{"Diag.D2fdx2Cell", len(s.Diag.D2fdx2Cell), nc},
		{"Diag.Vorticity", len(s.Diag.Vorticity), nv},
		{"Diag.HVertex", len(s.Diag.HVertex), nv},
		{"Diag.PVVertex", len(s.Diag.PVVertex), nv},
		{"Diag.PVCell", len(s.Diag.PVCell), nc},
		{"AreaCell", len(m.AreaCell), nc}, {"AreaTriangle", len(m.AreaTriangle), nv},
		{"DcEdge", len(m.DcEdge), ne}, {"DvEdge", len(m.DvEdge), ne},
		{"FVertex", len(m.FVertex), nv},
		{"CellsOnEdge", len(m.CellsOnEdge), 2 * ne},
		{"VerticesOnEdge", len(m.VerticesOnEdge), 2 * ne},
		{"CellsOnVertex", len(m.CellsOnVertex), nv * mesh.VertexDegree},
		{"EdgesOnVertex", len(m.EdgesOnVertex), nv * mesh.VertexDegree},
		{"KiteAreasOnVertex", len(m.KiteAreasOnVertex), nv * mesh.VertexDegree},
		{"CSR.CellPtr", len(csr.CellPtr), nc + 1},
		{"CSR.EdgePtr", len(csr.EdgePtr), ne + 1},
	} {
		if err := check(c.name, c.got, c.want); err != nil {
			return err
		}
	}
	return nil
}

// step advances one RK-4 time step through the compiled plan (called from
// Solver.Step).
func (r *PlanRunner) step() {
	s := r.s
	name := "rk4_step_plan"
	if r.tasks != nil {
		name = "rk4_step_taskplan"
	}
	span := s.Trace.StartSpan(name)
	s.cur = s.State
	if r.tasks != nil {
		r.tasks.Run()
	} else {
		r.pool.Region(r.stepPlan.exec)
	}
	s.StepCount++
	s.Time += s.Cfg.Dt
	s.stepsCounter.Inc()
	span.End()
}

// RunKernel implements Runner for the non-step paths (Init, tracer steps,
// direct kernel calls): the kernel's original patterns run through a cached
// leveled schedule inside one region. Unknown kernels fall back to the
// per-kernel region of PoolRunner.
func (r *PlanRunner) RunKernel(k *Kernel) {
	if kp, ok := r.kernelPlans[k]; ok {
		r.pool.Region(kp.exec)
		return
	}
	PoolRunner{Pool: r.pool}.RunKernel(k)
}

// kernelSpecs wraps a kernel's original patterns as opSpecs (no fusion, no
// elision — Table I metadata drives the leveling).
func kernelSpecs(k *Kernel) []opSpec {
	specs := make([]opSpec, len(k.Patterns))
	for i, pt := range k.Patterns {
		specs[i] = opSpec{
			id:     pt.Info.ID,
			n:      pt.N,
			shape:  pt.Info.Shape,
			out:    pt.Info.Out,
			reads:  pt.Info.Reads,
			writes: pt.Info.Writes,
			run:    pt.Run,
		}
	}
	return specs
}

func splitStages(specs []opSpec) [][]opSpec {
	out := make([][]opSpec, 4)
	for _, sp := range specs {
		out[sp.stage] = append(out[sp.stage], sp)
	}
	return out
}

// stepSpecs builds the full four-stage program (before elision) in program
// order. Variable naming follows Table I: h0/u0 is the accepted state, h/u
// the provisional state, h_new/u_new the RK accumulator. Stage 0's tendency
// ops read the accepted state directly (the Provis copy it replaces was
// bitwise identical), stage 3's solve_diagnostics reads the committed state.
func (r *PlanRunner) stepSpecs() []opSpec {
	s := r.s
	m := s.M
	cfg := s.Cfg
	nc, ne, nv := m.NCells, m.NEdges, m.NVertices

	var specs []opSpec
	add := func(sp opSpec) { specs = append(specs, sp) }

	for stage := 0; stage < 4; stage++ {
		suf := fmt.Sprintf("@%d", stage)
		// State names seen by the tendency ops (stage 0 reads the accepted
		// state) and by solve_diagnostics (stage 3 reads the committed state).
		tendH, tendU := "h", "u"
		if stage == 0 {
			tendH, tendU = "h0", "u0"
		}
		diagH, diagU := "h", "u"
		diagSt := s.Provis
		if stage == 3 {
			diagH, diagU = "h0", "u0"
			diagSt = s.State
		}

		// --- fused tendency + accumulate (+ provisional or commit) -------
		thID, tuID := "A1+X4"+suf, "B1+X1+X5"+suf
		thReads := []string{tendU, "h_edge"}
		thWrites := []string{"tend_h"}
		tuReads := []string{tendU}
		tuWrites := []string{"tend_u"}
		if !cfg.AdvectionOnly {
			tuReads = append(tuReads, "pv_edge", "h_edge", "ke", tendH)
			if cfg.Viscosity != 0 {
				tuReads = append(tuReads, "divergence", "vorticity")
			}
		}
		switch stage {
		case 0:
			thID, tuID = "A1+X4+X2@0", "B1+X1+X5+X3@0"
			thReads = append(thReads, "h0")
			thWrites = append(thWrites, "h_new", "h")
			tuWrites = append(tuWrites, "u_new", "u")
		case 3:
			thID, tuID = "A1+X4+commit@3", "B1+X1+X5+commit@3"
			thReads = append(thReads, "h_new")
			thWrites = append(thWrites, "h0")
			tuReads = append(tuReads, "u_new")
			tuWrites = append(tuWrites, "u0")
		default:
			thReads = append(thReads, "h_new")
			thWrites = append(thWrites, "h_new")
			tuReads = append(tuReads, "u_new")
			tuWrites = append(tuWrites, "u_new")
		}
		add(opSpec{id: thID, stage: stage, n: nc, shape: pattern.ShapeA, out: pattern.Mass,
			reads: thReads, writes: thWrites, run: r.mkTendH(stage)})
		add(opSpec{id: tuID, stage: stage, n: ne, shape: pattern.ShapeB, out: pattern.Velocity,
			reads: tuReads, writes: tuWrites, run: r.mkTendU(stage)})

		// --- provisional state (stages 1, 2 only; fused elsewhere) -------
		if stage == 1 || stage == 2 {
			add(opSpec{id: "X2" + suf, stage: stage, n: nc, shape: pattern.ShapeX, out: pattern.Mass,
				reads: []string{"h0", "tend_h"}, writes: []string{"h"}, run: r.mkX2(stage)})
			add(opSpec{id: "X3" + suf, stage: stage, n: ne, shape: pattern.ShapeX, out: pattern.Velocity,
				reads: []string{"u0", "tend_u"}, writes: []string{"u"}, run: r.mkX3(stage)})
		}

		// --- PostSubstep hook slot ---------------------------------------
		add(opSpec{id: "hook" + suf, stage: stage, hook: true,
			reads: []string{diagH, diagU}, writes: []string{diagH, diagU}})

		// --- compute_solve_diagnostics -----------------------------------
		if cfg.HighOrderThickness {
			add(opSpec{id: "C1" + suf, stage: stage, n: nc, shape: pattern.ShapeC, out: pattern.Mass,
				reads: []string{diagH}, writes: []string{"d2fdx2_cell"}, run: r.cC1(diagSt)})
			add(opSpec{id: "D2" + suf, stage: stage, n: ne, shape: pattern.ShapeD, out: pattern.Velocity,
				reads: []string{diagH, "d2fdx2_cell"}, writes: []string{"h_edge"}, run: r.cD2(diagSt)})
		} else {
			add(opSpec{id: "D1" + suf, stage: stage, n: ne, shape: pattern.ShapeD, out: pattern.Velocity,
				reads: []string{diagH}, writes: []string{"h_edge"}, run: r.cD1(diagSt)})
		}
		add(opSpec{id: "E" + suf, stage: stage, n: nv, shape: pattern.ShapeE, out: pattern.Vorticity,
			reads: []string{diagU}, writes: []string{"vorticity"}, run: r.cE(diagSt)})
		add(opSpec{id: "A2" + suf, stage: stage, n: nc, shape: pattern.ShapeA, out: pattern.Mass,
			reads: []string{diagU}, writes: []string{"divergence"}, run: r.cA2(diagSt)})
		add(opSpec{id: "A3" + suf, stage: stage, n: nc, shape: pattern.ShapeA, out: pattern.Mass,
			reads: []string{diagU}, writes: []string{"ke"}, run: r.cA3(diagSt)})
		add(opSpec{id: "F" + suf, stage: stage, n: ne, shape: pattern.ShapeF, out: pattern.Velocity,
			reads: []string{diagU}, writes: []string{"v"}, run: r.cF(diagSt)})
		add(opSpec{id: "G" + suf, stage: stage, n: nv, shape: pattern.ShapeG, out: pattern.Vorticity,
			reads: []string{diagH, "vorticity"}, writes: []string{"h_vertex", "pv_vertex"}, run: r.cG(diagSt)})
		add(opSpec{id: "C2" + suf, stage: stage, n: nc, shape: pattern.ShapeC, out: pattern.Mass,
			reads: []string{"pv_vertex"}, writes: []string{"pv_cell"}, run: r.cC2()})
		add(opSpec{id: "H2" + suf, stage: stage, n: nc, shape: pattern.ShapeH, out: pattern.Mass,
			reads: []string{"vorticity"}, writes: []string{"vorticity_cell"}, run: s.patH2})
		add(opSpec{id: "H1" + suf, stage: stage, n: ne, shape: pattern.ShapeH, out: pattern.Velocity,
			reads: []string{"pv_vertex"}, writes: []string{"pv_edge"}, run: r.cH1()})
		if cfg.APVM != 0 {
			add(opSpec{id: "B2" + suf, stage: stage, n: ne, shape: pattern.ShapeB, out: pattern.Velocity,
				reads:  []string{"pv_vertex", "pv_cell", diagU, "v", "pv_edge"},
				writes: []string{"pv_edge"}, run: r.cB2(diagSt)})
		}

		// --- mpas_reconstruct (stage 3 only; cur == State there) ---------
		if stage == 3 {
			add(opSpec{id: "A4@3", stage: 3, n: nc, shape: pattern.ShapeA, out: pattern.Mass,
				reads:  []string{"u0"},
				writes: []string{"uReconstructX", "uReconstructY", "uReconstructZ"}, run: s.patA4})
			add(opSpec{id: "X6@3", stage: 3, n: nc, shape: pattern.ShapeX, out: pattern.Mass,
				reads:  []string{"uReconstructX", "uReconstructY", "uReconstructZ"},
				writes: []string{"uReconstructZonal", "uReconstructMeridional"}, run: s.patX6})
		}
	}
	return specs
}

// liveInVars returns the variables with an upward-exposed read: read by some
// op before any op writes them. Since one step's program runs in a loop,
// these are exactly the values the next step still needs.
func liveInVars(specs []opSpec) map[string]bool {
	written := map[string]bool{}
	liveIn := map[string]bool{}
	for _, sp := range specs {
		for _, v := range sp.reads {
			if !written[v] {
				liveIn[v] = true
			}
		}
		for _, v := range sp.writes {
			written[v] = true
		}
	}
	return liveIn
}

// elideDead removes ops none of whose outputs are consumed: a single
// backward liveness pass with the roots plus the program's own upward-exposed
// reads live at the end. Every op writes its full output range, so a write
// kills the variable. Hook slots are never elided.
func elideDead(specs []opSpec, roots []string) (kept []opSpec, elided []string) {
	live := map[string]bool{}
	for _, v := range roots {
		live[v] = true
	}
	for v := range liveInVars(specs) {
		live[v] = true
	}
	keep := make([]bool, len(specs))
	for i := len(specs) - 1; i >= 0; i-- {
		sp := specs[i]
		alive := sp.hook
		for _, v := range sp.writes {
			if live[v] {
				alive = true
			}
		}
		if !alive {
			continue
		}
		keep[i] = true
		for _, v := range sp.writes {
			delete(live, v)
		}
		for _, v := range sp.reads {
			live[v] = true
		}
	}
	for i, sp := range specs {
		if keep[i] {
			kept = append(kept, sp)
		} else {
			elided = append(elided, sp.id)
		}
	}
	return kept, elided
}

// localEdge reports whether a dependency edge needs no barrier under stable
// static chunking over a shared index space: both endpoints partition the
// same range identically (same n, same output point type), and the endpoint
// that touches foreign elements — the reader of a RAW edge, the earlier
// reader of a WAR edge — is pointwise, so each worker only revisits elements
// of its own chunk. Output dependencies (WAW) are local whenever the
// partitions coincide, since each element is rewritten by the same worker.
func localEdge(a, b opSpec, kind dataflow.DepKind) bool {
	if a.hook || b.hook {
		return false
	}
	if a.n != b.n || a.out != b.out {
		return false
	}
	switch kind {
	case dataflow.RAW:
		return b.shape == pattern.ShapeX
	case dataflow.WAR:
		return a.shape == pattern.ShapeX
	case dataflow.WAW:
		return true
	}
	return false
}

// compile lowers the program (a list of synchronization scopes, each in
// program order) into a verified flat schedule. Within a scope, ops are
// leveled by LevelsBy with the locality predicate and a barrier is placed
// after each level; scope boundaries always get a barrier; the final
// schedule entry drops its barrier because the region join provides it.
func (r *PlanRunner) compile(scopes [][]opSpec) (*plan, error) {
	p := &plan{s: r.s}
	for _, scope := range scopes {
		if len(scope) == 0 {
			continue
		}
		insts := make([]pattern.Instance, len(scope))
		for i, sp := range scope {
			insts[i] = sp.instance()
		}
		g := dataflow.Build(insts)
		levels := g.LevelsBy(func(e dataflow.Edge) bool {
			return localEdge(scope[e.From], scope[e.To], e.Kind)
		})
		var order []int
		for _, lv := range levels {
			order = append(order, lv...)
		}
		if err := g.ValidateOrder(order); err != nil {
			return nil, err
		}
		base := len(p.specs)
		p.specs = append(p.specs, scope...)
		for _, lv := range levels {
			for k, j := range lv {
				sp := scope[j]
				op := planOp{id: sp.id, stage: sp.stage, run: sp.run, hook: sp.hook,
					barrier: k == len(lv)-1}
				if !sp.hook {
					op.ranges = r.ranges(sp.n)
				}
				p.ops = append(p.ops, op)
				p.order = append(p.order, base+j)
			}
		}
	}
	if n := len(p.ops); n > 0 && !p.ops[n-1].hook {
		p.ops[n-1].barrier = false
	}
	p.barrierAfter = make([]bool, len(p.ops))
	for i, op := range p.ops {
		p.barrierAfter[i] = op.barrier
		if op.barrier && !op.hook {
			p.barriers++
		}
	}
	if err := p.verify(); err != nil {
		return nil, err
	}
	p.exec = p.run
	return p, nil
}

// verify checks barrier sufficiency over the whole program: every non-local
// dependency edge must cross at least one barrier, both with the hook slots
// scheduled (their conditional barriers count) and with them stripped (the
// schedule actually executed when no PostSubstep hook is installed).
func (p *plan) verify() error {
	if err := coverageErr(p.specs, p.order, p.barrierAfter); err != nil {
		return err
	}
	specs, order, barriers := stripHooks(p.specs, p.order, p.barrierAfter)
	return coverageErr(specs, order, barriers)
}

// stripHooks removes hook entries from a (specs, order, barrierAfter)
// schedule — the runtime shape when s.PostSubstep is nil.
func stripHooks(specs []opSpec, order []int, barrierAfter []bool) ([]opSpec, []int, []bool) {
	keepSpec := make([]int, len(specs)) // old spec index -> new, -1 dropped
	var outSpecs []opSpec
	for i, sp := range specs {
		if sp.hook {
			keepSpec[i] = -1
			continue
		}
		keepSpec[i] = len(outSpecs)
		outSpecs = append(outSpecs, sp)
	}
	var outOrder []int
	var outBarriers []bool
	for pos, si := range order {
		if keepSpec[si] < 0 {
			continue
		}
		outOrder = append(outOrder, keepSpec[si])
		outBarriers = append(outBarriers, barrierAfter[pos])
	}
	return outSpecs, outOrder, outBarriers
}

// coverageErr builds the dependency graph over the program-order spec list
// and checks that the execution order respects every edge and that every
// non-local edge has a barrier strictly between its endpoints.
func coverageErr(specs []opSpec, order []int, barrierAfter []bool) error {
	insts := make([]pattern.Instance, len(specs))
	for i, sp := range specs {
		insts[i] = sp.instance()
	}
	g := dataflow.Build(insts)
	if err := g.ValidateOrder(order); err != nil {
		return err
	}
	pos := make([]int, len(specs))
	for pp, si := range order {
		pos[si] = pp
	}
	for _, e := range g.Edges {
		if localEdge(specs[e.From], specs[e.To], e.Kind) {
			continue
		}
		covered := false
		for k := pos[e.From]; k < pos[e.To]; k++ {
			if barrierAfter[k] {
				covered = true
				break
			}
		}
		if !covered {
			return fmt.Errorf("sw: plan schedule leaves %s dependency %s (%s -> %s) without a barrier",
				e.Kind, e.Variable, specs[e.From].id, specs[e.To].id)
		}
	}
	return nil
}

// ranges returns the per-worker static partition of [0,n), cached per index
// space so every op over the same space uses the identical partition — the
// property the locality predicate relies on. Boundaries are rounded up to
// multiples of 8 elements (one cache line of float64), so adjacent workers
// never write the same line.
func (r *PlanRunner) ranges(n int) [][2]int32 {
	if rs, ok := r.rangeCache[n]; ok {
		return rs
	}
	rs := alignedRanges(n, r.pool.Workers())
	r.rangeCache[n] = rs
	return rs
}

func alignedRanges(n, nw int) [][2]int32 {
	rs := make([][2]int32, nw)
	q := n / nw
	lo := 0
	for w := 0; w < nw; w++ {
		hi := n
		if w < nw-1 {
			hi = (lo + q + 7) &^ 7
			if hi > n {
				hi = n
			}
		}
		if hi < lo {
			hi = lo
		}
		rs[w] = [2]int32{int32(lo), int32(hi)}
		lo = hi
	}
	return rs
}
