package sw

import "repro/internal/mesh"

// Invariants are the globally conserved (or nearly conserved) quantities of
// the shallow-water system, used to validate long integrations: RK-4 with
// the TRiSK scheme conserves mass to roundoff and bounds the drift of total
// energy and potential enstrophy.
type Invariants struct {
	Mass               float64 // integral of h
	TotalEnergy        float64 // kinetic + potential
	PotentialEnstrophy float64 // integral of h q^2 / 2
	MinH, MaxH         float64
	MaxSpeed           float64 // max |u| over edges
}

// ComputeInvariants evaluates the invariants for the solver's current state
// using its current diagnostics (call after Init or Step).
func (s *Solver) ComputeInvariants() Invariants {
	m := s.M
	st := s.State
	d := s.Diag
	var inv Invariants
	inv.MinH = st.H[0]
	inv.MaxH = st.H[0]
	g := s.Cfg.Gravity
	for c := 0; c < m.NCells; c++ {
		a := m.AreaCell[c]
		h := st.H[c]
		inv.Mass += a * h
		inv.TotalEnergy += a * (h*d.KE[c] + 0.5*g*h*h + g*h*s.B[c])
		if h < inv.MinH {
			inv.MinH = h
		}
		if h > inv.MaxH {
			inv.MaxH = h
		}
	}
	for v := 0; v < m.NVertices; v++ {
		q := d.PVVertex[v]
		inv.PotentialEnstrophy += m.AreaTriangle[v] * d.HVertex[v] * q * q / 2
	}
	for e := 0; e < m.NEdges; e++ {
		sp := st.U[e]
		if sp < 0 {
			sp = -sp
		}
		if sp > inv.MaxSpeed {
			inv.MaxSpeed = sp
		}
	}
	return inv
}

// MeshOf exposes the solver mesh (convenience for harness code).
func (s *Solver) MeshOf() *mesh.Mesh { return s.M }
