package sw

import (
	"fmt"
	"io"
)

// History records a time series of the model invariants — the standard way
// long shallow-water integrations are monitored (mass/energy/enstrophy
// budgets).
type History struct {
	Times   []float64 // seconds
	Records []Invariants
}

// Sample appends the solver's current invariants.
func (h *History) Sample(s *Solver) {
	h.Times = append(h.Times, s.Time)
	h.Records = append(h.Records, s.ComputeInvariants())
}

// Len returns the number of samples.
func (h *History) Len() int { return len(h.Times) }

// MaxRelDrift returns the maximum relative drift of mass, total energy and
// potential enstrophy against the first sample.
func (h *History) MaxRelDrift() (mass, energy, enstrophy float64) {
	if len(h.Records) == 0 {
		return 0, 0, 0
	}
	r0 := h.Records[0]
	abs := func(x float64) float64 {
		if x < 0 {
			return -x
		}
		return x
	}
	for _, r := range h.Records[1:] {
		if d := abs(r.Mass-r0.Mass) / r0.Mass; d > mass {
			mass = d
		}
		if d := abs(r.TotalEnergy-r0.TotalEnergy) / r0.TotalEnergy; d > energy {
			energy = d
		}
		if d := abs(r.PotentialEnstrophy-r0.PotentialEnstrophy) / r0.PotentialEnstrophy; d > enstrophy {
			enstrophy = d
		}
	}
	return mass, energy, enstrophy
}

// WriteCSV writes the series as CSV.
func (h *History) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "time_s,mass,total_energy,potential_enstrophy,min_h,max_h,max_speed"); err != nil {
		return err
	}
	for i, t := range h.Times {
		r := h.Records[i]
		if _, err := fmt.Fprintf(w, "%.6g,%.17g,%.17g,%.17g,%.6g,%.6g,%.6g\n",
			t, r.Mass, r.TotalEnergy, r.PotentialEnstrophy, r.MinH, r.MaxH, r.MaxSpeed); err != nil {
			return err
		}
	}
	return nil
}

// RunWithHistory advances n steps, sampling the history every interval
// steps (and once before the first step if the history is empty).
func (s *Solver) RunWithHistory(n, interval int, h *History) {
	if interval < 1 {
		interval = 1
	}
	if h.Len() == 0 {
		h.Sample(s)
	}
	for i := 0; i < n; i++ {
		s.Step()
		if (i+1)%interval == 0 || i == n-1 {
			h.Sample(s)
		}
	}
}
