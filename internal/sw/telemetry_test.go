package sw_test

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/pattern"
	"repro/internal/sw"
	"repro/internal/telemetry"
)

// traceEvents decodes a Chrome trace written by the tracer into a flat list.
func traceEvents(t *testing.T, tr *telemetry.Tracer) []struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	Tid  int     `json:"tid"`
} {
	t.Helper()
	var b strings.Builder
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &decoded); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	return decoded.TraceEvents
}

func TestSolverTelemetrySpansAndTimers(t *testing.T) {
	s := newTC2Solver(t, 2)
	tr := telemetry.NewTracer()
	reg := telemetry.NewRegistry()
	s.EnableTelemetry(tr, reg)
	s.Init()
	steps := 3
	s.Run(steps)

	if got := reg.Counter("sw_steps_total").Value(); got != int64(steps) {
		t.Errorf("sw_steps_total = %d, want %d", got, steps)
	}
	// compute_tend runs once per stage: 4 per step.
	tendTimer := reg.Timer("sw_kernel_compute_tend_seconds")
	if got := tendTimer.Count(); got != int64(4*steps) {
		t.Errorf("compute_tend timer count = %d, want %d", got, 4*steps)
	}
	if tendTimer.Total() <= 0 {
		t.Error("compute_tend timer accumulated no time")
	}

	events := traceEvents(t, tr)
	count := map[string]int{}
	for _, ev := range events {
		count[ev.Name]++
	}
	if count["rk4_step"] != steps {
		t.Errorf("rk4_step spans = %d, want %d", count["rk4_step"], steps)
	}
	for stage := 0; stage < 4; stage++ {
		name := []string{"rk4_stage_0", "rk4_stage_1", "rk4_stage_2", "rk4_stage_3"}[stage]
		if count[name] != steps {
			t.Errorf("%s spans = %d, want %d", name, count[name], steps)
		}
	}
	// Init contributes 1 extra span pair for diagnostics+reconstruct.
	if count["init"] != 1 {
		t.Errorf("init spans = %d, want 1", count["init"])
	}
	if count[pattern.KernelComputeTend] != 4*steps {
		t.Errorf("%s spans = %d, want %d",
			pattern.KernelComputeTend, count[pattern.KernelComputeTend], 4*steps)
	}

	// Kernel spans nest in time inside a stage span on the same track.
	var stage, kernel *struct {
		Name string  `json:"name"`
		Ph   string  `json:"ph"`
		Ts   float64 `json:"ts"`
		Dur  float64 `json:"dur"`
		Tid  int     `json:"tid"`
	}
	for i := range events {
		switch events[i].Name {
		case "rk4_stage_0":
			if stage == nil {
				stage = &events[i]
			}
		case pattern.KernelComputeTend:
			if kernel == nil {
				kernel = &events[i]
			}
		}
	}
	if stage == nil || kernel == nil {
		t.Fatal("missing stage or kernel span")
	}
	if kernel.Tid != stage.Tid {
		t.Error("kernel span not on the stage span's track")
	}
	if kernel.Ts < stage.Ts || kernel.Ts+kernel.Dur > stage.Ts+stage.Dur+1e-3 {
		t.Errorf("kernel [%g,%g] not nested in stage [%g,%g]",
			kernel.Ts, kernel.Ts+kernel.Dur, stage.Ts, stage.Ts+stage.Dur)
	}

	// Prometheus export includes the counter and the timer histogram.
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE sw_steps_total counter",
		"# TYPE sw_kernel_compute_tend_seconds histogram",
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("prometheus output missing %q", want)
		}
	}
}

// The ProfilingRunner keeps its report contract while carrying its
// measurements in a telemetry registry exportable as Prometheus text.
func TestProfilingRunnerRegistryExport(t *testing.T) {
	s := newTC2Solver(t, 2)
	prof := sw.NewProfilingRunner(sw.SerialRunner{})
	s.Runner = prof
	s.Run(2)
	// B1 (momentum tendency) runs once per stage: 4 per step.
	var b1 *sw.ProfileEntry
	for _, e := range prof.Report() {
		if e.ID == "B1" {
			b1 = &e
			break
		}
	}
	if b1 == nil {
		t.Fatal("report has no B1 entry")
	}
	if b1.Calls != 8 || b1.Kernel != pattern.KernelComputeTend {
		t.Errorf("B1 entry = %+v, want 8 calls in %s", b1, pattern.KernelComputeTend)
	}
	if b1.PerCall <= 0 || b1.Total <= 0 {
		t.Errorf("B1 entry has no time: %+v", b1)
	}
	var b strings.Builder
	if err := prof.Registry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "sw_pattern_B1_seconds_count 8") {
		t.Errorf("prometheus export missing B1 timer:\n%s", b.String())
	}
}

// Disabling telemetry again must fully detach the sinks.
func TestSolverTelemetryDisable(t *testing.T) {
	s := newTC2Solver(t, 2)
	tr := telemetry.NewTracer()
	reg := telemetry.NewRegistry()
	s.EnableTelemetry(tr, reg)
	s.Init()
	s.Step()
	n := tr.NumSpans()
	steps := reg.Counter("sw_steps_total").Value()
	s.EnableTelemetry(nil, nil)
	s.Step()
	if tr.NumSpans() != n {
		t.Error("spans recorded after telemetry disabled")
	}
	if reg.Counter("sw_steps_total").Value() != steps {
		t.Error("metrics recorded after telemetry disabled")
	}
}
