package sw_test

import (
	"math"
	"testing"

	"repro/internal/sw"
	"repro/internal/testcases"
)

func TestTracerConstancyPreservedExactly(t *testing.T) {
	// A uniform tracer must stay uniform to the last bit: its discrete
	// flux divergence is computed by the same sums as the thickness
	// tendency, so Q tracks h bitwise.
	m := testMesh(t, 3)
	s, _ := sw.NewSolver(m, sw.DefaultConfig(m))
	testcases.SetupTC5(s)
	ones := make([]float64, m.NCells)
	for c := range ones {
		ones[c] = 1
	}
	tr := s.AddTracer("uniform", ones)
	s.Run(10)
	q := s.Concentration(tr, nil)
	for c, v := range q {
		if v != 1 {
			t.Fatalf("cell %d: uniform tracer drifted to %v", c, v)
		}
	}
}

func TestTracerMassConserved(t *testing.T) {
	m := testMesh(t, 3)
	s, _ := sw.NewSolver(m, sw.DefaultConfig(m))
	testcases.SetupTC6(s)
	q0 := make([]float64, m.NCells)
	for c := range q0 {
		// A blob in the northern mid-latitudes.
		q0[c] = math.Exp(-math.Pow((m.LatCell[c]-0.6)/0.3, 2))
	}
	tr := s.AddTracer("blob", q0)
	mass0 := s.TracerMass(tr)
	s.Run(25)
	mass1 := s.TracerMass(tr)
	if rel := math.Abs(mass1-mass0) / mass0; rel > 1e-13 {
		t.Errorf("tracer mass drift %v", rel)
	}
}

func TestTracerAdvectsWithFlow(t *testing.T) {
	// Under TC2's steady zonal flow, a zonally-symmetric tracer is steady,
	// while a zonally-varying one moves.
	m := testMesh(t, 3)
	s, _ := sw.NewSolver(m, sw.DefaultConfig(m))
	testcases.SetupTC2(s)
	zonalSym := make([]float64, m.NCells)
	wavy := make([]float64, m.NCells)
	for c := range zonalSym {
		zonalSym[c] = 1 + 0.5*math.Sin(m.LatCell[c])
		wavy[c] = 1 + 0.5*math.Cos(2*m.LonCell[c])*math.Cos(m.LatCell[c])
	}
	trSym := s.AddTracer("sym", zonalSym)
	trWavy := s.AddTracer("wavy", wavy)
	s.Run(20)
	qSym := s.Concentration(trSym, nil)
	qWavy := s.Concentration(trWavy, nil)
	maxSym, maxWavy := 0.0, 0.0
	for c := range qSym {
		if d := math.Abs(qSym[c] - zonalSym[c]); d > maxSym {
			maxSym = d
		}
		if d := math.Abs(qWavy[c] - wavy[c]); d > maxWavy {
			maxWavy = d
		}
	}
	if maxWavy < 5*maxSym {
		t.Errorf("wavy tracer (%v) should move much more than symmetric one (%v)", maxWavy, maxSym)
	}
	if maxSym > 0.02 {
		t.Errorf("zonally symmetric tracer drifted %v", maxSym)
	}
}

func TestTracerWithThreadedRunnerBitwise(t *testing.T) {
	m := testMesh(t, 3)
	run := func(r sw.Runner) []float64 {
		s, _ := sw.NewSolver(m, sw.DefaultConfig(m))
		if r != nil {
			s.Runner = r
		}
		testcases.SetupTC5(s)
		q0 := make([]float64, m.NCells)
		for c := range q0 {
			q0[c] = 1 + 0.3*math.Sin(3*m.LonCell[c])
		}
		tr := s.AddTracer("q", q0)
		s.Run(5)
		return append([]float64(nil), tr.Q...)
	}
	serial := run(nil)
	pool := newTestPool(t)
	threaded := run(sw.PoolRunner{Pool: pool})
	for c := range serial {
		if serial[c] != threaded[c] {
			t.Fatalf("threaded tracer diverges at %d", c)
		}
	}
}
