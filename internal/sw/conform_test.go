package sw_test

// Table-driven conformance suite for the solver package itself: the three
// algorithmic forms of the paper — scatter (Alg. 2), branchy gather (Alg. 3)
// and the solver's branch-free gather (Alg. 4) — run the same named cases
// through the differential harness. The gather pair must agree bitwise (±1
// multiplication and halving are exact in IEEE arithmetic); the scatter pair
// within the roundoff-reordering band.

import (
	"testing"

	"repro/internal/conform"
	"repro/internal/mesh"
)

func TestAlgorithmFormsConform(t *testing.T) {
	m := mesh.MustBuild(2, mesh.Options{})
	tests := []struct {
		caseName string
		strategy conform.Strategy
		steps    int
	}{
		{"tc1", conform.BranchyGather(), 2},
		{"tc1", conform.ScatterRef(), 2},
		{"tc2", conform.BranchyGather(), 3},
		{"tc2", conform.ScatterRef(), 3},
		{"tc5", conform.BranchyGather(), 2},
		{"tc5", conform.ScatterRef(), 2},
		{"galewsky", conform.BranchyGather(), 2},
		{"galewsky", conform.ScatterRef(), 2},
	}
	base := conform.Baseline()
	refs := map[string]*conform.Result{}
	for _, tc := range tests {
		key := tc.caseName
		c, err := conform.NamedCase(tc.caseName, m, tc.steps)
		if err != nil {
			t.Fatal(err)
		}
		if refs[key] == nil || tc.steps != len(refs[key].Mass)-1 {
			r, err := base.Run(c, true)
			if err != nil {
				t.Fatal(err)
			}
			refs[key] = r
		}
		t.Run(tc.caseName+"/"+tc.strategy.Name, func(t *testing.T) {
			res, err := tc.strategy.Run(c, true)
			if err != nil {
				t.Fatal(err)
			}
			tol := conform.PairTolerance(base, tc.strategy, tc.steps)
			if d, ok := conform.CompareResults(refs[key], res, tol); !ok {
				t.Errorf("diverged: %v", d)
			}
		})
	}
}
