package hybrid

import (
	"math"
	"testing"

	"repro/internal/mesh"
	"repro/internal/pattern"
	"repro/internal/perfmodel"
	"repro/internal/sw"
	"repro/internal/testcases"
)

var cachedMesh *mesh.Mesh

func mesh3(t testing.TB) *mesh.Mesh {
	if cachedMesh == nil {
		var err error
		cachedMesh, err = mesh.Build(3, mesh.Options{LloydIterations: 2})
		if err != nil {
			t.Fatal(err)
		}
	}
	return cachedMesh
}

func TestAssignmentsCoverTable1(t *testing.T) {
	for name, a := range map[string]Assignment{
		"serial":     SerialAssignment(),
		"kernel":     KernelLevelAssignment(),
		"pattern":    PatternDrivenAssignment(0.3),
		"deviceOnly": DeviceOnlyAssignment(),
	} {
		for _, ins := range pattern.Table1 {
			if _, ok := a[ins.ID]; !ok {
				t.Errorf("%s assignment misses %s", name, ins.ID)
			}
		}
	}
}

func TestAssignmentSemantics(t *testing.T) {
	kl := KernelLevelAssignment()
	// Kernel-level never splits.
	for id, p := range kl {
		if p.HostFrac != 0 && p.HostFrac != 1 {
			t.Errorf("kernel-level splits %s (%v)", id, p.HostFrac)
		}
	}
	// Heavy kernels on the device.
	for _, id := range []string{"B1", "F", "E", "A2"} {
		if kl.HostFrac(id) != 0 {
			t.Errorf("kernel-level puts %s on host", id)
		}
	}
	pd := PatternDrivenAssignment(0.25)
	if pd.HostFrac("B1") != 0 {
		t.Error("pattern-driven must keep B1 on device")
	}
	if pd.HostFrac("A2") != 0.25 {
		t.Error("adjustable fraction not applied")
	}
	if pd.HostFrac("A1") != 1 {
		t.Error("A1 should be on host")
	}
	// Unknown pattern defaults to device.
	if (Assignment{}).HostFrac("zzz") != 0 {
		t.Error("default placement should be device")
	}
	// Clamping.
	if PatternDrivenAssignment(7).HostFrac("A2") != 1 {
		t.Error("fraction not clamped")
	}
	if Host.String() != "host" || Dev.String() != "device" {
		t.Error("Side strings")
	}
}

func TestExecutorBitwiseMatchesSerial(t *testing.T) {
	m := mesh3(t)
	run := func(attach func(*sw.Solver) func()) *sw.Solver {
		s, err := sw.NewSolver(m, sw.DefaultConfig(m))
		if err != nil {
			t.Fatal(err)
		}
		cleanup := attach(s)
		if cleanup != nil {
			defer cleanup()
		}
		testcases.SetupTC5(s)
		s.Run(5)
		return s
	}
	serial := run(func(s *sw.Solver) func() { return nil })
	for name, sched := range map[string]*Schedule{
		"kernel-level":   KernelLevelSchedule(),
		"pattern-driven": PatternDrivenSchedule(0.3),
		"device-only":    {Node: DefaultNode(), Assign: DeviceOnlyAssignment(), ResidentData: true},
	} {
		hyb := run(func(s *sw.Solver) func() {
			e := NewHybridSolver(s, sched, 2, 4)
			return e.Close
		})
		for c := range serial.State.H {
			if serial.State.H[c] != hyb.State.H[c] {
				t.Fatalf("%s: H differs at cell %d", name, c)
			}
		}
		for e := range serial.State.U {
			if serial.State.U[e] != hyb.State.U[e] {
				t.Fatalf("%s: U differs at edge %d", name, e)
			}
		}
	}
}

func TestExecutorAccumulatesSimTime(t *testing.T) {
	m := mesh3(t)
	s, _ := sw.NewSolver(m, sw.DefaultConfig(m))
	e := NewHybridSolver(s, PatternDrivenSchedule(0.3), 2, 2)
	defer e.Close()
	testcases.SetupTC2(s)
	t0 := e.SimTime()
	if t0 <= 0 {
		t.Error("Init should already accumulate simulated time")
	}
	s.Step()
	if e.SimTime() <= t0 {
		t.Error("Step did not advance simulated time")
	}
}

func TestFigure5MachinePrecisionEquivalence(t *testing.T) {
	// The paper's Figure 5(c): hybrid vs original results differ only
	// within machine precision. Our hybrid executor splits ranges without
	// changing arithmetic, and the scatter reference reorders sums, so we
	// compare the hybrid run against the scatter-form reference
	// diagnostics after real time stepping.
	m := mesh3(t)
	s, _ := sw.NewSolver(m, sw.DefaultConfig(m))
	e := NewHybridSolver(s, PatternDrivenSchedule(0.25), 2, 4)
	defer e.Close()
	testcases.SetupTC5(s)
	steps := int(testcases.Day / s.Cfg.Dt / 4)
	s.Run(steps)
	ref := sw.NewDiagnostics(m)
	s.ReferenceDiagnostics(s.State, ref)
	diff, scale := testcases.MaxAbsDiff(s.Diag.KE, ref.KE)
	if diff/scale > 1e-11 {
		t.Errorf("hybrid vs reference KE rel diff %v", diff/scale)
	}
}

func TestSimTransfersOnlyWhenCrossing(t *testing.T) {
	mc := perfmodel.CountsForCells(40962)
	// Device-only resident schedule: after warmup, no transfers at all.
	devOnly := &Schedule{Node: DefaultNode(), Assign: DeviceOnlyAssignment(),
		ResidentData: true, OverlapTransfers: true}
	sim := SimulateStep(devOnly, mc, false)
	if sim.TransferBytes != 0 {
		t.Errorf("device-only resident run moved %v bytes", sim.TransferBytes)
	}
	// Kernel-level moves data every step.
	simKL := SimulateStep(KernelLevelSchedule(), mc, false)
	if simKL.TransferBytes <= 0 {
		t.Error("kernel-level run moved no data")
	}
	// Pattern-driven with a split moves the split fractions only — less
	// than kernel-level.
	simPD := SimulateStep(PatternDrivenSchedule(0.3), mc, false)
	if simPD.TransferBytes <= 0 {
		t.Error("pattern-driven split moved no data")
	}
	if simPD.TransferBytes >= simKL.TransferBytes {
		t.Errorf("pattern-driven moved %v >= kernel-level %v",
			simPD.TransferBytes, simKL.TransferBytes)
	}
}

func TestSimBusyAccounting(t *testing.T) {
	mc := perfmodel.CountsForCells(163842)
	sim := SimulateStep(PatternDrivenSchedule(0.3), mc, false)
	if sim.HostBusy <= 0 || sim.DevBusy <= 0 {
		t.Errorf("busy times: host %v dev %v", sim.HostBusy, sim.DevBusy)
	}
	// Wall time at least the busier side's busy time (can't run faster
	// than the critical resource).
	busier := math.Max(sim.HostBusy, sim.DevBusy)
	if sim.Time < busier*0.999 {
		t.Errorf("wall %v < busier side %v", sim.Time, busier)
	}
	// And no more than the sum of everything (no time invented).
	if sim.Time > sim.HostBusy+sim.DevBusy+sim.TransferTime+1 {
		t.Errorf("wall %v exceeds total resources", sim.Time)
	}
}

func TestFigure7Bands(t *testing.T) {
	// Paper Figure 7: kernel-level speedups 4.59x..6.05x, pattern-driven
	// 5.63x..8.35x, growing with mesh size, pattern-driven always winning.
	rows := Figure7([]int{40962, 163842, 655362, 2621442})
	if len(rows) != 4 {
		t.Fatal("want 4 rows")
	}
	for i, r := range rows {
		if r.PatternSpeedup <= r.KernelSpeedup {
			t.Errorf("cells %d: pattern %.2fx <= kernel %.2fx", r.Cells, r.PatternSpeedup, r.KernelSpeedup)
		}
		if i > 0 {
			if r.KernelSpeedup < rows[i-1].KernelSpeedup {
				t.Errorf("kernel speedup not growing with mesh size")
			}
			if r.PatternSpeedup < rows[i-1].PatternSpeedup {
				t.Errorf("pattern speedup not growing with mesh size")
			}
		}
	}
	small, large := rows[0], rows[3]
	if small.KernelSpeedup < 3.5 || small.KernelSpeedup > 5.6 {
		t.Errorf("kernel speedup at 40962 = %.2f, paper 4.59", small.KernelSpeedup)
	}
	if small.PatternSpeedup < 4.5 || small.PatternSpeedup > 7.0 {
		t.Errorf("pattern speedup at 40962 = %.2f, paper 5.63", small.PatternSpeedup)
	}
	if large.KernelSpeedup < 5.0 || large.KernelSpeedup > 7.5 {
		t.Errorf("kernel speedup at 2621442 = %.2f, paper 6.05", large.KernelSpeedup)
	}
	if large.PatternSpeedup < 7.0 || large.PatternSpeedup > 10.5 {
		t.Errorf("pattern speedup at 2621442 = %.2f, paper 8.35", large.PatternSpeedup)
	}
	// The pattern-driven improvement over kernel-level at the largest mesh
	// (paper: 38%).
	if gain := large.PatternSpeedup / large.KernelSpeedup; gain < 1.2 || gain > 1.6 {
		t.Errorf("pattern/kernel gain %.2f, paper 1.38", gain)
	}
}

func TestTunerFindsInteriorOrBoundaryMinimum(t *testing.T) {
	mc := perfmodel.CountsForCells(655362)
	frac, best := TunePatternDriven(mc)
	if frac < 0 || frac > 0.9 {
		t.Errorf("tuned fraction %v out of range", frac)
	}
	// Tuned time beats the no-host and all-host extremes it searched.
	for _, f := range []float64{0, 0.9} {
		if tm := SimulateStep(PatternDrivenSchedule(f), mc, false).Time; tm < best*0.999 {
			t.Errorf("tuner missed better fraction %v: %v < %v", f, tm, best)
		}
	}
}

func TestDeviceLadderExported(t *testing.T) {
	labels, sp := DeviceLadder(655362)
	if len(labels) != 6 || sp[len(sp)-1] < 50 {
		t.Errorf("ladder: %v %v", labels, sp)
	}
}

func TestOverlapNeverSlower(t *testing.T) {
	mc := perfmodel.CountsForCells(163842)
	base := PatternDrivenSchedule(0.3)
	noOverlap := *base
	noOverlap.OverlapTransfers = false
	tOv := SimulateStep(base, mc, false).Time
	tNo := SimulateStep(&noOverlap, mc, false).Time
	if tOv > tNo*1.0001 {
		t.Errorf("overlapped %v slower than non-overlapped %v", tOv, tNo)
	}
}

func TestCPUSerialMatchesPerfmodel(t *testing.T) {
	mc := perfmodel.CountsForCells(40962)
	if CPUSerialStep(mc) != perfmodel.StepTime(perfmodel.XeonE5_2680v2(), mc, perfmodel.Opt{}) {
		t.Error("CPUSerialStep wrapper diverged")
	}
}

// countingRunner wraps a Runner, counting delegated kernels.
type countingRunner struct {
	inner sw.Runner
	n     int
}

func (c *countingRunner) RunKernel(k *sw.Kernel) { c.n++; c.inner.RunKernel(k) }

// TestHostRunnerDelegation pins SetHostRunner: a kernel-level executor with a
// compiled sw.PlanRunner standing in for the host side must reproduce the
// undelegated executor bitwise (the delegate runs the same patterns over the
// same full ranges, only through its compiled per-kernel schedules), and the
// delegate must actually receive the fully-host-resident kernels.
func TestHostRunnerDelegation(t *testing.T) {
	m := mesh3(t)
	mk := func() *sw.Solver {
		s, err := sw.NewSolver(m, sw.DefaultConfig(m))
		if err != nil {
			t.Fatal(err)
		}
		testcases.SetupTC5(s)
		return s
	}

	ref := mk()
	eRef := NewHybridSolver(ref, KernelLevelSchedule(), 2, 2)
	defer eRef.Close()

	del := mk()
	eDel := NewHybridSolver(del, KernelLevelSchedule(), 2, 2)
	defer eDel.Close()
	pr, err := sw.NewPlanRunner(del, eDel.HostPool)
	if err != nil {
		t.Fatal(err)
	}
	cr := &countingRunner{inner: pr}
	eDel.SetHostRunner(cr)

	const steps = 3
	ref.Run(steps)
	del.Run(steps)

	if cr.n == 0 {
		t.Fatal("host delegate never invoked: kernel-level schedule should have fully-host kernels")
	}
	for c := range ref.State.H {
		if del.State.H[c] != ref.State.H[c] {
			t.Fatalf("h[%d] differs bitwise: %v vs %v", c, del.State.H[c], ref.State.H[c])
		}
	}
	for e := range ref.State.U {
		if del.State.U[e] != ref.State.U[e] {
			t.Fatalf("u[%d] differs bitwise: %v vs %v", e, del.State.U[e], ref.State.U[e])
		}
	}
	if eDel.SimTime() != eRef.SimTime() {
		t.Errorf("delegation changed the simulated clock: %v vs %v", eDel.SimTime(), eRef.SimTime())
	}
}
