package hybrid

import (
	"testing"

	"repro/internal/pattern"
	"repro/internal/perfmodel"
	"repro/internal/sw"
	"repro/internal/testcases"
)

func TestAutoAssignCoversAllDefaultPatterns(t *testing.T) {
	mc := perfmodel.CountsForCells(163842)
	a := AutoAssign(DefaultNode(), mc, false)
	for _, ins := range pattern.Table1 {
		if ins.Optional {
			continue
		}
		if _, ok := a[ins.ID]; !ok {
			t.Errorf("auto assignment misses %s", ins.ID)
		}
	}
	// Wide stencils pinned to the device.
	for _, id := range []string{"B1", "B2", "F"} {
		if a.HostFrac(id) != 0 {
			t.Errorf("auto assignment splits wide stencil %s", id)
		}
	}
	// Fractions are sane.
	for id, p := range a {
		if p.HostFrac < 0 || p.HostFrac > 1 {
			t.Errorf("%s fraction %v", id, p.HostFrac)
		}
	}
	// High-order workload also covered.
	aHO := AutoAssign(DefaultNode(), mc, true)
	if _, ok := aHO["C1"]; !ok {
		t.Error("high-order auto assignment misses C1")
	}
}

func TestAutoScheduleCompetitiveWithTunedHandSchedule(t *testing.T) {
	// The model-derived schedule must be at least as good as the paper's
	// hand schedule with a tuned adjustable fraction (it has strictly more
	// freedom), and clearly better than device-only.
	for _, cells := range []int{40962, 655362, 2621442} {
		mc := perfmodel.CountsForCells(cells)
		_, tuned := TunePatternDriven(mc)
		auto := SimulateStep(AutoSchedule(mc), mc, false).Time
		devOnly := SimulateStep(&Schedule{
			Node: DefaultNode(), Assign: DeviceOnlyAssignment(),
			OverlapTransfers: true, ResidentData: true,
		}, mc, false).Time
		if auto > tuned*1.05 {
			t.Errorf("cells %d: auto %v worse than tuned hand schedule %v", cells, auto, tuned)
		}
		if auto >= devOnly {
			t.Errorf("cells %d: auto %v no better than device-only %v", cells, auto, devOnly)
		}
	}
}

func TestAutoScheduleExecutesCorrectly(t *testing.T) {
	m := mesh3(t)
	mc := perfmodel.MeshCounts{Cells: m.NCells, Edges: m.NEdges, Vertices: m.NVertices}
	run := func(sched *Schedule) *sw.Solver {
		s, _ := sw.NewSolver(m, sw.DefaultConfig(m))
		if sched != nil {
			e := NewHybridSolver(s, sched, 2, 2)
			defer e.Close()
		}
		testcases.SetupTC5(s)
		s.Run(3)
		return s
	}
	serial := run(nil)
	auto := run(AutoSchedule(mc))
	for c := range serial.State.H {
		if serial.State.H[c] != auto.State.H[c] {
			t.Fatalf("auto schedule diverges at cell %d", c)
		}
	}
}
