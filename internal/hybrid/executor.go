package hybrid

import (
	"sync"
	"time"

	"repro/internal/dataflow"
	"repro/internal/par"
	"repro/internal/pattern"
	"repro/internal/perfmodel"
	"repro/internal/sw"
	"repro/internal/telemetry"
)

// Executor is the real hybrid runtime: an sw.Runner that executes every
// kernel's patterns across two worker pools standing in for the CPU and the
// accelerator, split according to the schedule's assignment and synchronized
// at data-flow levels — the concurrency structure of Figure 4(b). Results
// are exactly those of a serial run (each output element is computed by one
// iteration with identical arithmetic); the simulated platform clock
// advances through the attached Sim.
type Executor struct {
	Sched    *Schedule
	HostPool *par.Pool
	// DevPools holds one worker pool per accelerator (Node.DevCount); the
	// device share of every pattern range is split contiguously across
	// them, all running concurrently with the host pool.
	DevPools []*par.Pool
	Sim      *Sim

	levels     map[string][][]int
	ownedPools bool

	// hostRunner, when set, takes over kernels that are fully host-resident
	// under the schedule (HostFrac == 1 for every pattern): such a kernel has
	// no device share to overlap with, so the executor's level-by-level
	// machinery adds only dispatch overhead over a direct host execution.
	// The simulated platform clock still advances normally.
	hostRunner sw.Runner

	// Telemetry (all nil until EnableTelemetry): spans per data-flow level,
	// counters of output elements placed on the host vs the accelerators,
	// and a histogram of per-level unit imbalance (slowest unit's wall time
	// over the mean — 1.0 is a perfectly balanced level).
	trace     *telemetry.Tracer
	metrics   *telemetry.Registry
	hostElems *telemetry.Counter
	devElems  *telemetry.Counter
	imbalance *telemetry.Histogram
}

// levelSpanNames are fixed so tracing a level never formats a string; no
// kernel has more data-flow levels than it has patterns (max 11).
var levelSpanNames = [...]string{
	"level_0", "level_1", "level_2", "level_3", "level_4", "level_5",
	"level_6", "level_7", "level_8", "level_9", "level_10", "level_11",
}

func levelSpanName(i int) string {
	if i < len(levelSpanNames) {
		return levelSpanNames[i]
	}
	return "level_n"
}

// NewExecutor creates an executor with its own worker pools (hostWorkers and
// devWorkers goroutines per pool; <=0 selects GOMAXPROCS). One device pool
// is created per accelerator in the schedule's node.
func NewExecutor(sched *Schedule, mc perfmodel.MeshCounts, hostWorkers, devWorkers int) *Executor {
	devPools := make([]*par.Pool, sched.Node.devCount())
	for i := range devPools {
		devPools[i] = par.NewPool(devWorkers)
	}
	return &Executor{
		Sched:      sched,
		HostPool:   par.NewPool(hostWorkers),
		DevPools:   devPools,
		Sim:        NewSim(sched, mc),
		levels:     map[string][][]int{},
		ownedPools: true,
	}
}

// Close releases the executor's worker pools.
func (e *Executor) Close() {
	if e.ownedPools {
		e.HostPool.Close()
		for _, p := range e.DevPools {
			p.Close()
		}
	}
}

// SimTime returns the accumulated simulated platform seconds.
func (e *Executor) SimTime() float64 { return e.Sim.Time }

// EnableTelemetry attaches a tracer (spans per data-flow level, nesting
// under the solver's kernel spans by time) and a registry (host/device
// element-split counters, level-imbalance histogram, pool dispatch counters,
// simulated-platform gauges) to the executor. Either argument may be nil.
func (e *Executor) EnableTelemetry(tr *telemetry.Tracer, reg *telemetry.Registry) {
	e.trace = tr
	e.metrics = reg
	e.hostElems = reg.Counter("hybrid_host_elements_total")
	e.devElems = reg.Counter("hybrid_dev_elements_total")
	e.imbalance = reg.Histogram("hybrid_level_imbalance_ratio")
	e.HostPool.Instrument(reg, "host")
	devNames := [...]string{"dev0", "dev1", "dev2", "dev3"}
	for i, p := range e.DevPools {
		name := "devn"
		if i < len(devNames) {
			name = devNames[i]
		}
		p.Instrument(reg, name)
	}
	e.Sim.EnableTelemetry(reg)
}

// kernelLevels caches the intra-kernel data-flow levels. The cache is keyed
// by kernel name, so it must not be consulted for the single-pattern slices
// a ProfilingRunner carves out of a kernel (same name, fewer patterns) —
// those are trivially one level anyway.
func (e *Executor) kernelLevels(k *sw.Kernel) [][]int {
	if len(k.Patterns) == 1 {
		return [][]int{{0}}
	}
	if lv, ok := e.levels[k.Name]; ok && len(lv) > 0 {
		n := 0
		for _, level := range lv {
			n += len(level)
		}
		if n == len(k.Patterns) {
			return lv
		}
	}
	insts := make([]pattern.Instance, len(k.Patterns))
	for i, p := range k.Patterns {
		insts[i] = p.Info
	}
	lv := dataflow.Build(insts).Levels()
	e.levels[k.Name] = lv
	return lv
}

// SetHostRunner installs a delegate for fully-host-resident kernels — e.g.
// an sw.PlanRunner whose compiled per-kernel schedules replace the executor's
// level-by-level dispatch on the host side. Results are unchanged (the
// delegate computes the same patterns over the same full ranges); only the
// execution path differs. Pass nil to restore the built-in path.
func (e *Executor) SetHostRunner(r sw.Runner) { e.hostRunner = r }

// fullyHost reports whether the schedule places every pattern of k entirely
// on the host.
func (e *Executor) fullyHost(k *sw.Kernel) bool {
	for _, p := range k.Patterns {
		if e.Sched.Assign.HostFrac(p.Info.ID) != 1 {
			return false
		}
	}
	return true
}

// advanceSim advances the simulated platform clock for one kernel execution.
func (e *Executor) advanceSim(k *sw.Kernel) {
	works := make([]perfmodel.PatternWork, len(k.Patterns))
	for i, p := range k.Patterns {
		works[i] = perfmodel.PatternWork{
			Inst: p.Info, N: p.N, Flops: p.FlopsPerElem, Bytes: p.BytesPerElem,
		}
	}
	e.Sim.RunKernel(k.Name, works)
}

// RunKernel implements sw.Runner: level by level, the host pool runs each
// pattern's leading HostFrac of the output range while the device pool runs
// the rest, concurrently.
func (e *Executor) RunKernel(k *sw.Kernel) {
	if e.hostRunner != nil && e.fullyHost(k) {
		e.hostRunner.RunKernel(k)
		n := 0
		for _, p := range k.Patterns {
			n += p.N
		}
		e.hostElems.Add(int64(n))
		e.advanceSim(k)
		return
	}
	nDev := len(e.DevPools)
	for li, level := range e.kernelLevels(k) {
		lsp := e.trace.StartSpan(levelSpanName(li))
		type task struct {
			run    func(lo, hi int)
			lo, hi int
		}
		var hostTasks []task
		devTasks := make([][]task, nDev)
		hostN, devN := 0, 0
		for _, pi := range level {
			p := k.Patterns[pi]
			f := e.Sched.Assign.HostFrac(p.Info.ID)
			nH := int(f * float64(p.N))
			if nH > 0 {
				hostTasks = append(hostTasks, task{p.Run, 0, nH})
				hostN += nH
			}
			// Split the device share contiguously across the accelerators.
			rem := p.N - nH
			devN += rem
			lo := nH
			for d := 0; d < nDev && rem > 0; d++ {
				chunk := rem / (nDev - d)
				if d == nDev-1 || chunk == 0 {
					chunk = rem
				}
				devTasks[d] = append(devTasks[d], task{p.Run, lo, lo + chunk})
				lo += chunk
				rem -= chunk
			}
		}
		e.hostElems.Add(int64(hostN))
		e.devElems.Add(int64(devN))
		var wg sync.WaitGroup
		runOn := func(pool *par.Pool, tasks []task) {
			for _, t := range tasks {
				pool.ForRange(t.lo, t.hi, t.run)
			}
		}
		// The last non-empty worker runs inline; the rest on goroutines.
		type unit struct {
			pool  *par.Pool
			tasks []task
		}
		var units []unit
		if len(hostTasks) > 0 {
			units = append(units, unit{e.HostPool, hostTasks})
		}
		for d := 0; d < nDev; d++ {
			if len(devTasks[d]) > 0 {
				units = append(units, unit{e.DevPools[d], devTasks[d]})
			}
		}
		// With metrics attached, time each concurrent unit so the level's
		// load imbalance (slowest unit / mean) can be observed.
		var durs []time.Duration
		if e.metrics != nil && len(units) > 1 {
			durs = make([]time.Duration, len(units))
		}
		runUnit := func(i int, u unit) {
			if durs == nil {
				runOn(u.pool, u.tasks)
				return
			}
			t0 := time.Now()
			runOn(u.pool, u.tasks)
			durs[i] = time.Since(t0)
		}
		for i := 0; i+1 < len(units); i++ {
			wg.Add(1)
			go func(i int, u unit) {
				defer wg.Done()
				runUnit(i, u)
			}(i, units[i])
		}
		if len(units) > 0 {
			runUnit(len(units)-1, units[len(units)-1])
		}
		wg.Wait()
		if durs != nil {
			var sum, max time.Duration
			for _, d := range durs {
				sum += d
				if d > max {
					max = d
				}
			}
			if sum > 0 {
				mean := float64(sum) / float64(len(durs))
				e.imbalance.Observe(float64(max) / mean)
			}
		}
		if lsp != nil {
			lsp.SetArg("host_elems", hostN)
			lsp.SetArg("dev_elems", devN)
			lsp.End()
		}
	}
	// Advance the simulated platform clock for this kernel.
	e.advanceSim(k)
}

// NewHybridSolver wires a solver to a hybrid executor on its mesh.
func NewHybridSolver(s *sw.Solver, sched *Schedule, hostWorkers, devWorkers int) *Executor {
	mc := perfmodel.MeshCounts{
		Cells:    s.M.NCells,
		Edges:    s.M.NEdges,
		Vertices: s.M.NVertices,
	}
	e := NewExecutor(sched, mc, hostWorkers, devWorkers)
	s.Runner = e
	return e
}
