package hybrid

import (
	"sync"

	"repro/internal/dataflow"
	"repro/internal/par"
	"repro/internal/pattern"
	"repro/internal/perfmodel"
	"repro/internal/sw"
)

// Executor is the real hybrid runtime: an sw.Runner that executes every
// kernel's patterns across two worker pools standing in for the CPU and the
// accelerator, split according to the schedule's assignment and synchronized
// at data-flow levels — the concurrency structure of Figure 4(b). Results
// are exactly those of a serial run (each output element is computed by one
// iteration with identical arithmetic); the simulated platform clock
// advances through the attached Sim.
type Executor struct {
	Sched    *Schedule
	HostPool *par.Pool
	// DevPools holds one worker pool per accelerator (Node.DevCount); the
	// device share of every pattern range is split contiguously across
	// them, all running concurrently with the host pool.
	DevPools []*par.Pool
	Sim      *Sim

	levels     map[string][][]int
	ownedPools bool
}

// NewExecutor creates an executor with its own worker pools (hostWorkers and
// devWorkers goroutines per pool; <=0 selects GOMAXPROCS). One device pool
// is created per accelerator in the schedule's node.
func NewExecutor(sched *Schedule, mc perfmodel.MeshCounts, hostWorkers, devWorkers int) *Executor {
	devPools := make([]*par.Pool, sched.Node.devCount())
	for i := range devPools {
		devPools[i] = par.NewPool(devWorkers)
	}
	return &Executor{
		Sched:      sched,
		HostPool:   par.NewPool(hostWorkers),
		DevPools:   devPools,
		Sim:        NewSim(sched, mc),
		levels:     map[string][][]int{},
		ownedPools: true,
	}
}

// Close releases the executor's worker pools.
func (e *Executor) Close() {
	if e.ownedPools {
		e.HostPool.Close()
		for _, p := range e.DevPools {
			p.Close()
		}
	}
}

// SimTime returns the accumulated simulated platform seconds.
func (e *Executor) SimTime() float64 { return e.Sim.Time }

// kernelLevels caches the intra-kernel data-flow levels.
func (e *Executor) kernelLevels(k *sw.Kernel) [][]int {
	if lv, ok := e.levels[k.Name]; ok {
		return lv
	}
	insts := make([]pattern.Instance, len(k.Patterns))
	for i, p := range k.Patterns {
		insts[i] = p.Info
	}
	lv := dataflow.Build(insts).Levels()
	e.levels[k.Name] = lv
	return lv
}

// RunKernel implements sw.Runner: level by level, the host pool runs each
// pattern's leading HostFrac of the output range while the device pool runs
// the rest, concurrently.
func (e *Executor) RunKernel(k *sw.Kernel) {
	nDev := len(e.DevPools)
	for _, level := range e.kernelLevels(k) {
		type task struct {
			run    func(lo, hi int)
			lo, hi int
		}
		var hostTasks []task
		devTasks := make([][]task, nDev)
		for _, pi := range level {
			p := k.Patterns[pi]
			f := e.Sched.Assign.HostFrac(p.Info.ID)
			nH := int(f * float64(p.N))
			if nH > 0 {
				hostTasks = append(hostTasks, task{p.Run, 0, nH})
			}
			// Split the device share contiguously across the accelerators.
			rem := p.N - nH
			lo := nH
			for d := 0; d < nDev && rem > 0; d++ {
				chunk := rem / (nDev - d)
				if d == nDev-1 || chunk == 0 {
					chunk = rem
				}
				devTasks[d] = append(devTasks[d], task{p.Run, lo, lo + chunk})
				lo += chunk
				rem -= chunk
			}
		}
		var wg sync.WaitGroup
		runOn := func(pool *par.Pool, tasks []task) {
			for _, t := range tasks {
				pool.ForRange(t.lo, t.hi, t.run)
			}
		}
		// The last non-empty worker runs inline; the rest on goroutines.
		type unit struct {
			pool  *par.Pool
			tasks []task
		}
		var units []unit
		if len(hostTasks) > 0 {
			units = append(units, unit{e.HostPool, hostTasks})
		}
		for d := 0; d < nDev; d++ {
			if len(devTasks[d]) > 0 {
				units = append(units, unit{e.DevPools[d], devTasks[d]})
			}
		}
		for i := 0; i+1 < len(units); i++ {
			wg.Add(1)
			go func(u unit) {
				defer wg.Done()
				runOn(u.pool, u.tasks)
			}(units[i])
		}
		if len(units) > 0 {
			runOn(units[len(units)-1].pool, units[len(units)-1].tasks)
		}
		wg.Wait()
	}
	// Advance the simulated platform clock for this kernel.
	works := make([]perfmodel.PatternWork, len(k.Patterns))
	for i, p := range k.Patterns {
		works[i] = perfmodel.PatternWork{
			Inst: p.Info, N: p.N, Flops: p.FlopsPerElem, Bytes: p.BytesPerElem,
		}
	}
	e.Sim.RunKernel(k.Name, works)
}

// NewHybridSolver wires a solver to a hybrid executor on its mesh.
func NewHybridSolver(s *sw.Solver, sched *Schedule, hostWorkers, devWorkers int) *Executor {
	mc := perfmodel.MeshCounts{
		Cells:    s.M.NCells,
		Edges:    s.M.NEdges,
		Vertices: s.M.NVertices,
	}
	e := NewExecutor(sched, mc, hostWorkers, devWorkers)
	s.Runner = e
	return e
}
