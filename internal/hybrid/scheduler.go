package hybrid

import (
	"repro/internal/dataflow"
	"repro/internal/pattern"
	"repro/internal/perfmodel"
)

// AutoAssign derives a pattern placement automatically from the platform
// performance model and the data-flow graph — the paper's §6 future work
// ("building performance models for the pattern-driven design"), made
// concrete: per data-flow level, the divisible patterns are split between
// host and device with the fraction that equalizes the two finish times,
// given the work already pinned to each side.
//
// Wide edge stencils (shapes B and F) stay on the device: splitting them
// would move their large gather neighborhoods across PCIe every stage,
// which the transfer model (and the paper's design) rules out.
func AutoAssign(node Node, mc perfmodel.MeshCounts, highOrder bool) Assignment {
	w := perfmodel.Workload(mc, highOrder)
	byKernel := map[string][]perfmodel.PatternWork{}
	for _, pw := range w {
		byKernel[pw.Inst.Kernel] = append(byKernel[pw.Inst.Kernel], pw)
	}
	assign := Assignment{}
	for _, kernel := range pattern.Kernels() {
		pats := byKernel[kernel]
		if len(pats) == 0 {
			continue
		}
		insts := make([]pattern.Instance, len(pats))
		for i, p := range pats {
			insts[i] = p.Inst
		}
		for _, level := range dataflow.Build(insts).Levels() {
			assignLevel(node, assign, pats, level)
		}
	}
	return assign
}

// divisible reports whether a pattern's range may be split across devices.
func divisible(sh pattern.Shape) bool {
	return sh != pattern.ShapeB && sh != pattern.ShapeF
}

// assignLevel chooses placements for the patterns of one concurrency level.
func assignLevel(node Node, assign Assignment, pats []perfmodel.PatternWork, level []int) {
	// Fixed device work: indivisible patterns. Divisible work measured in
	// seconds on each side.
	var fixedDev, divHost, divDev float64
	for _, pi := range level {
		p := pats[pi]
		tH := node.HostPatternTime(p.N, p.Flops, p.Bytes)
		tD := node.DevPatternTime(p.N, p.Flops, p.Bytes)
		if !divisible(p.Inst.Shape) {
			fixedDev += tD
			assign[p.Inst.ID] = Placement{HostFrac: 0}
			continue
		}
		divHost += tH
		divDev += tD
	}
	if divHost+divDev == 0 {
		return
	}
	// Level finish time with host fraction f applied to all divisible
	// patterns: max(f*divHost, fixedDev + (1-f)*divDev). Equalize.
	f := (fixedDev + divDev) / (divHost + divDev)
	f = clamp01(f)
	for _, pi := range level {
		p := pats[pi]
		if divisible(p.Inst.Shape) {
			assign[p.Inst.ID] = Placement{HostFrac: f}
		}
	}
}

// AutoSchedule wraps AutoAssign into a runnable schedule with resident data
// and overlapped transfers (the pattern-driven execution machinery).
func AutoSchedule(mc perfmodel.MeshCounts) *Schedule {
	node := DefaultNode()
	return &Schedule{
		Node:             node,
		Assign:           AutoAssign(node, mc, false),
		OverlapTransfers: true,
		ResidentData:     true,
	}
}
