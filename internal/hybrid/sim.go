package hybrid

import (
	"repro/internal/dataflow"
	"repro/internal/pattern"
	"repro/internal/perfmodel"
	"repro/internal/telemetry"
)

// Schedule is a complete hybrid execution policy: the platform, the pattern
// assignment, and whether host-device transfers overlap with computation
// (the pattern-driven design overlaps; the kernel-level design does not).
type Schedule struct {
	Node             Node
	Assign           Assignment
	OverlapTransfers bool
	// ResidentData keeps model arrays resident on the device, transferring
	// only the fractions a split moves (§4.A) — the pattern-driven
	// behaviour. When false, every offloaded kernel ships its inputs in and
	// its outputs back, the "repeated data transfer" drawback the paper
	// ascribes to the kernel-level design (§2.C).
	ResidentData bool
}

// KernelLevelSchedule returns the Figure 2 design on the default platform.
func KernelLevelSchedule() *Schedule {
	return &Schedule{Node: DefaultNode(), Assign: KernelLevelAssignment()}
}

// PatternDrivenSchedule returns the Figure 4(b) design with the given
// adjustable host fraction.
func PatternDrivenSchedule(adjustable float64) *Schedule {
	return &Schedule{
		Node:             DefaultNode(),
		Assign:           PatternDrivenAssignment(adjustable),
		OverlapTransfers: true,
		ResidentData:     true,
	}
}

// varState tracks which leading fraction of a variable's array the host
// holds and which trailing fraction the device holds. Splits are spatially
// aligned (the host always owns the leading chunk), so a side that wrote its
// fraction needs no transfer to read it back.
type varState struct {
	hostHas float64 // host holds the first hostHas of the array
	devHas  float64 // device holds the last devHas
}

// Sim accumulates simulated time for a sequence of kernel executions under a
// schedule — the clock of the hybrid run.
type Sim struct {
	Sched *Schedule
	MC    perfmodel.MeshCounts

	Time          float64 // simulated wall time, seconds
	HostBusy      float64 // total host compute seconds
	DevBusy       float64 // total device compute seconds
	TransferTime  float64
	TransferBytes float64
	Transfers     int

	vars   map[string]*varState
	levels map[string][][]int // kernel name -> pattern index levels
	kinds  map[string]perfmodel.PointKind

	// Gauges mirroring the accumulators above (nil until EnableTelemetry;
	// Set on a nil gauge is a no-op).
	gTime, gHostBusy, gDevBusy *telemetry.Gauge
	gTransferT, gTransferB     *telemetry.Gauge
	gTransfers                 *telemetry.Gauge
}

// EnableTelemetry attaches gauges for the simulated platform clock: total
// simulated seconds, host/device busy seconds, and transfer time/bytes/count.
func (s *Sim) EnableTelemetry(reg *telemetry.Registry) {
	s.gTime = reg.Gauge("sim_time_seconds")
	s.gHostBusy = reg.Gauge("sim_host_busy_seconds")
	s.gDevBusy = reg.Gauge("sim_dev_busy_seconds")
	s.gTransferT = reg.Gauge("sim_transfer_seconds")
	s.gTransferB = reg.Gauge("sim_transfer_bytes")
	s.gTransfers = reg.Gauge("sim_transfers")
	s.publish()
}

// publish refreshes the gauges from the accumulators.
func (s *Sim) publish() {
	s.gTime.Set(s.Time)
	s.gHostBusy.Set(s.HostBusy)
	s.gDevBusy.Set(s.DevBusy)
	s.gTransferT.Set(s.TransferTime)
	s.gTransferB.Set(s.TransferBytes)
	s.gTransfers.Set(float64(s.Transfers))
}

// NewSim starts a simulation with all model data resident on both sides (the
// paper's §4.A: everything is offloaded once at startup and the mesh stays
// on the device).
func NewSim(sched *Schedule, mc perfmodel.MeshCounts) *Sim {
	return &Sim{
		Sched:  sched,
		MC:     mc,
		vars:   map[string]*varState{},
		levels: map[string][][]int{},
		kinds:  variableKinds(),
	}
}

// variableKinds maps every model variable to the mesh point set sizing it.
func variableKinds() map[string]perfmodel.PointKind {
	kinds := map[string]perfmodel.PointKind{
		"h0": perfmodel.PerCell, "h_new": perfmodel.PerCell,
		"u0": perfmodel.PerEdge, "u_new": perfmodel.PerEdge,
		"h_vertex": perfmodel.PerVertex,
	}
	toKind := func(p pattern.PointType) perfmodel.PointKind {
		switch p {
		case pattern.Mass:
			return perfmodel.PerCell
		case pattern.Velocity:
			return perfmodel.PerEdge
		default:
			return perfmodel.PerVertex
		}
	}
	for _, ins := range pattern.Table1 {
		for _, v := range ins.Writes {
			kinds[v] = toKind(ins.Out)
		}
	}
	return kinds
}

func (s *Sim) state(v string) *varState {
	st, ok := s.vars[v]
	if !ok {
		st = &varState{hostHas: 1, devHas: 1}
		s.vars[v] = st
	}
	return st
}

func (s *Sim) varBytes(v string) float64 {
	kind, ok := s.kinds[v]
	if !ok {
		return 0 // static mesh data: resident on both (setup transfer)
	}
	return float64(s.MC.Elements(kind)) * 8
}

// need charges a transfer making fraction f of variable v available on the
// given side, and returns the transfer seconds charged.
func (s *Sim) need(v string, side Side, f float64) float64 {
	if f <= 0 {
		return 0
	}
	bytes := s.varBytes(v)
	if bytes == 0 {
		return 0
	}
	st := s.state(v)
	var missing float64
	if side == Host {
		missing = f - st.hostHas
	} else {
		missing = f - st.devHas
	}
	if missing <= 0 {
		return 0
	}
	moved := missing * bytes
	t := s.Sched.Node.Link.TransferTime(moved)
	s.TransferBytes += moved
	s.TransferTime += t
	s.Transfers++
	if side == Host {
		st.hostHas = f
	} else {
		st.devHas = f
	}
	return t
}

// kernelLevels returns (cached) the data-flow levels of the kernel's
// pattern list — the intra-kernel concurrency sets.
// The cache is keyed by kernel name, so it must not be consulted for the
// single-pattern slices a ProfilingRunner carves out of a kernel (same name,
// fewer patterns) — those are trivially one level anyway.
func (s *Sim) kernelLevels(name string, pats []perfmodel.PatternWork) [][]int {
	if len(pats) == 1 {
		return [][]int{{0}}
	}
	if lv, ok := s.levels[name]; ok {
		n := 0
		for _, level := range lv {
			n += len(level)
		}
		if n == len(pats) {
			return lv
		}
	}
	insts := make([]pattern.Instance, len(pats))
	for i, p := range pats {
		insts[i] = p.Inst
	}
	lv := dataflow.Build(insts).Levels()
	s.levels[name] = lv
	return lv
}

// RunKernel advances the simulated clock over one kernel execution.
func (s *Sim) RunKernel(name string, pats []perfmodel.PatternWork) {
	if len(pats) == 0 {
		return
	}
	node := s.Sched.Node
	assign := s.Sched.Assign

	nHostPats, nDevPats := 0, 0
	for _, p := range pats {
		f := assign.HostFrac(p.Inst.ID)
		if f > 0 {
			nHostPats++
		}
		if f < 1 {
			nDevPats++
		}
	}
	kernelTime := 0.0
	if nHostPats > 0 {
		kernelTime = node.Host.RegionCost(nHostPats, node.HostOpt)
	}
	if nDevPats > 0 {
		if rc := node.Dev.RegionCost(nDevPats, node.DevOpt); rc > kernelTime {
			kernelTime = rc
		}
	}

	// Without device-resident data (kernel-level design), every offloaded
	// kernel ships its distinct inputs in and its outputs back.
	if !s.Sched.ResidentData {
		kernelTime += s.chargeKernelTransfers(pats)
	}

	for _, level := range s.kernelLevels(name, pats) {
		var hostT, devT, xferT float64
		for _, pi := range level {
			p := pats[pi]
			f := assign.HostFrac(p.Inst.ID)
			nH := int(f * float64(p.N))
			nD := p.N - nH
			if s.Sched.ResidentData {
				// Input movement: each side needs its fraction of every
				// read variable (plus a stencil halo, negligible here).
				for _, v := range p.Inst.Reads {
					if nH > 0 {
						xferT += s.need(v, Host, f)
					}
					if nD > 0 {
						xferT += s.need(v, Dev, 1-f)
					}
				}
				// Outputs become split-resident.
				for _, v := range p.Inst.Writes {
					st := s.state(v)
					st.hostHas = f
					st.devHas = 1 - f
				}
			}
			if nH > 0 {
				hostT += node.HostPatternTime(nH, p.Flops, p.Bytes)
			}
			if nD > 0 {
				devT += node.DevPatternTime(nD, p.Flops, p.Bytes)
			}
		}
		s.HostBusy += hostT
		s.DevBusy += devT
		levelT := hostT
		if devT > levelT {
			levelT = devT
		}
		if s.Sched.OverlapTransfers {
			if xferT > levelT {
				levelT = xferT
			}
		} else {
			levelT += xferT
		}
		kernelTime += levelT
	}
	s.Time += kernelTime
	s.publish()
}

// chargeKernelTransfers bills the in/out transfers of one offloaded kernel
// when data is not device-resident, returning the transfer seconds.
func (s *Sim) chargeKernelTransfers(pats []perfmodel.PatternWork) float64 {
	seen := map[string]bool{}
	total := 0.0
	charge := func(v string, frac float64) {
		if seen[v] || frac <= 0 {
			return
		}
		seen[v] = true
		bytes := s.varBytes(v) * frac
		if bytes == 0 {
			return
		}
		t := s.Sched.Node.Link.TransferTime(bytes)
		s.TransferBytes += bytes
		s.TransferTime += t
		s.Transfers++
		total += t
	}
	for _, p := range pats {
		devFrac := 1 - s.Sched.Assign.HostFrac(p.Inst.ID)
		for _, v := range p.Inst.Reads {
			charge(v, devFrac)
		}
		for _, v := range p.Inst.Writes {
			charge(v, devFrac)
		}
	}
	return total
}

// StateCopies charges the RK driver's per-step state copies (provisional
// state and accumulator initialization): each side copies the portion it
// holds through its own memory system.
func (s *Sim) StateCopies() {
	bytes := float64(s.MC.Cells+s.MC.Edges) * 8 * 2 * 2
	node := s.Sched.Node
	tH := bytes / node.Host.Bandwidth(node.HostOpt)
	tD := bytes / node.Dev.Bandwidth(node.DevOpt)
	t := tH
	if tD > t {
		t = tD
	}
	s.Time += t
	s.publish()
}

// SimulateStep returns the simulated cost of one full RK-4 step of the model
// on mesh counts mc under the schedule.
func SimulateStep(sched *Schedule, mc perfmodel.MeshCounts, highOrder bool) *Sim {
	sim := NewSim(sched, mc)
	w := perfmodel.Workload(mc, highOrder)
	byKernel := map[string][]perfmodel.PatternWork{}
	for _, pw := range w {
		byKernel[pw.Inst.Kernel] = append(byKernel[pw.Inst.Kernel], pw)
	}
	sim.StateCopies()
	for stage := 0; stage < 4; stage++ {
		for _, k := range perfmodel.StageKernels(stage) {
			sim.RunKernel(k, byKernel[k])
		}
	}
	return sim
}
