package hybrid

import (
	"testing"

	"repro/internal/pattern"
	"repro/internal/sw"
	"repro/internal/testcases"
)

func TestAssignmentFromProfile(t *testing.T) {
	entries := []sw.ProfileEntry{
		{ID: "B1", Kernel: pattern.KernelComputeTend, Share: 0.5},
		{ID: "A1", Kernel: pattern.KernelComputeTend, Share: 0.1},
		{ID: "F", Kernel: pattern.KernelSolveDiagnostics, Share: 0.3},
		{ID: "X2", Kernel: pattern.KernelNextSubstepState, Share: 0.01},
	}
	a := AssignmentFromProfile(entries, 0.2)
	if a.HostFrac("B1") != 0 || a.HostFrac("A1") != 0 {
		t.Error("compute_tend (60% share) should be offloaded whole")
	}
	if a.HostFrac("F") != 0 {
		t.Error("solve_diagnostics (30%) should be offloaded")
	}
	if a.HostFrac("X2") != 1 {
		t.Error("cheap substep kernel should stay on host")
	}
	// All Table I instances placed.
	for _, ins := range pattern.Table1 {
		if _, ok := a[ins.ID]; !ok {
			t.Errorf("%s unplaced", ins.ID)
		}
	}
}

func TestProfileGuidedScheduleEndToEnd(t *testing.T) {
	m := mesh3(t)
	s, _ := sw.NewSolver(m, sw.DefaultConfig(m))
	testcases.SetupTC5(s)
	sched := ProfileGuidedSchedule(s, 8, 0.05)
	// Real profiling must find the same heavy kernels the paper's Figure 2
	// places on the MIC: compute_tend and compute_solve_diagnostics.
	for _, id := range []string{"B1", "F", "A2", "E"} {
		if sched.Assign.HostFrac(id) != 0 {
			t.Errorf("profile-guided schedule keeps heavy pattern %s on host", id)
		}
	}
	for _, id := range []string{"X2", "X4"} {
		if sched.Assign.HostFrac(id) != 1 {
			t.Errorf("profile-guided schedule offloads cheap pattern %s", id)
		}
	}
	// The runner was restored.
	if _, ok := s.Runner.(*sw.ProfilingRunner); ok {
		t.Error("profiling runner left installed")
	}
	// The derived schedule executes correctly.
	hyb, _ := sw.NewSolver(m, sw.DefaultConfig(m))
	e := NewHybridSolver(hyb, sched, 2, 2)
	defer e.Close()
	testcases.SetupTC5(hyb)
	hyb.Run(2)
	ref, _ := sw.NewSolver(m, sw.DefaultConfig(m))
	testcases.SetupTC5(ref)
	ref.Run(2)
	for c := range ref.State.H {
		if ref.State.H[c] != hyb.State.H[c] {
			t.Fatalf("profile-guided run diverges at cell %d", c)
		}
	}
}
