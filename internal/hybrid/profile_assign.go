package hybrid

import (
	"repro/internal/pattern"
	"repro/internal/sw"
)

// AssignmentFromProfile builds a kernel-level assignment the way the paper
// describes the method being practiced (§2.C): "a profiling of the code is
// done to examine the cost of each kernel ... the more time-consuming
// kernels will reside on [the device]". Kernels whose measured share of the
// step time is at least threshold go to the device whole; the rest stay on
// the host.
func AssignmentFromProfile(entries []sw.ProfileEntry, threshold float64) Assignment {
	kernelShare := map[string]float64{}
	for _, e := range entries {
		kernelShare[e.Kernel] += e.Share
	}
	a := Assignment{}
	for _, ins := range pattern.Table1 {
		if kernelShare[ins.Kernel] >= threshold {
			a[ins.ID] = Placement{HostFrac: 0} // offload the heavy kernel
		} else {
			a[ins.ID] = Placement{HostFrac: 1}
		}
	}
	return a
}

// ProfileGuidedSchedule profiles real execution of the solver for the given
// number of steps (serially, through a ProfilingRunner), derives the
// kernel-level assignment, and restores the solver's original runner.
func ProfileGuidedSchedule(s *sw.Solver, steps int, threshold float64) *Schedule {
	orig := s.Runner
	prof := sw.NewProfilingRunner(orig)
	s.Runner = prof
	s.Run(steps)
	s.Runner = orig
	return &Schedule{
		Node:   DefaultNode(),
		Assign: AssignmentFromProfile(prof.Report(), threshold),
	}
}
