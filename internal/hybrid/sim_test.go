package hybrid

import (
	"testing"

	"repro/internal/pattern"
	"repro/internal/perfmodel"
)

func TestLedgerAlignedSplitsNeedNoTransfer(t *testing.T) {
	sched := PatternDrivenSchedule(0.4)
	sim := NewSim(sched, perfmodel.CountsForCells(2562))
	// A writer splits h 40/60; a reader with the same split reads for free.
	st := sim.state("h")
	st.hostHas, st.devHas = 0.4, 0.6
	if tr := sim.need("h", Host, 0.4); tr != 0 {
		t.Errorf("aligned host read charged %v", tr)
	}
	if tr := sim.need("h", Dev, 0.6); tr != 0 {
		t.Errorf("aligned dev read charged %v", tr)
	}
	// Reading MORE than the resident fraction transfers only the excess.
	bytesBefore := sim.TransferBytes
	if tr := sim.need("h", Host, 0.5); tr <= 0 {
		t.Error("widened host read was free")
	}
	moved := sim.TransferBytes - bytesBefore
	want := 0.1 * float64(2562) * 8
	if moved < want*0.99 || moved > want*1.01 {
		t.Errorf("moved %v bytes, want ~%v", moved, want)
	}
	// And now it is resident: a repeat read is free.
	if tr := sim.need("h", Host, 0.5); tr != 0 {
		t.Error("repeat read charged again")
	}
}

func TestLedgerUnknownVariableIsFree(t *testing.T) {
	sim := NewSim(PatternDrivenSchedule(0.3), perfmodel.CountsForCells(2562))
	// Static mesh data (not in the variable-kind table) never transfers.
	if tr := sim.need("dcEdge-not-a-model-var", Host, 1); tr != 0 {
		t.Error("static data charged")
	}
}

func TestVariableKindsComplete(t *testing.T) {
	kinds := variableKinds()
	// Every variable read or written by any Table I instance must have a
	// size class, except none — verify exhaustively.
	for _, ins := range pattern.Table1 {
		for _, v := range append(append([]string{}, ins.Reads...), ins.Writes...) {
			if _, ok := kinds[v]; !ok {
				t.Errorf("variable %q (used by %s) has no size class", v, ins.ID)
			}
		}
	}
}

func TestRunKernelEmptyNoop(t *testing.T) {
	sim := NewSim(PatternDrivenSchedule(0.3), perfmodel.CountsForCells(2562))
	before := sim.Time
	sim.RunKernel("empty", nil)
	if sim.Time != before {
		t.Error("empty kernel advanced the clock")
	}
}

func TestStateCopiesAdvanceClock(t *testing.T) {
	sim := NewSim(PatternDrivenSchedule(0.3), perfmodel.CountsForCells(40962))
	sim.StateCopies()
	if sim.Time <= 0 {
		t.Error("state copies free")
	}
}

func TestHostAvailabilityDeratesHostTime(t *testing.T) {
	full := DefaultNode()
	full.HostComputeFraction = 1
	half := DefaultNode()
	half.HostComputeFraction = 0.5
	tFull := full.HostPatternTime(100000, 10, 100)
	tHalf := half.HostPatternTime(100000, 10, 100)
	if tHalf < tFull*1.9 || tHalf > tFull*2.1 {
		t.Errorf("derating wrong: %v vs %v", tFull, tHalf)
	}
}
