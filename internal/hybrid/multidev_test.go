package hybrid

import (
	"testing"

	"repro/internal/perfmodel"
	"repro/internal/sw"
	"repro/internal/testcases"
)

// twoPhiSchedule is the full-node configuration of the paper's platform:
// one CPU socket driving both Xeon Phis.
func twoPhiSchedule(frac float64) *Schedule {
	node := DefaultNode()
	node.DevCount = 2
	return &Schedule{
		Node:             node,
		Assign:           PatternDrivenAssignment(frac),
		OverlapTransfers: true,
		ResidentData:     true,
	}
}

func TestTwoDevicesFasterButSublinear(t *testing.T) {
	mc := perfmodel.CountsForCells(655362)
	one := SimulateStep(PatternDrivenSchedule(0.2), mc, false).Time
	two := SimulateStep(twoPhiSchedule(0.2), mc, false).Time
	if two >= one {
		t.Errorf("second accelerator did not help: %v vs %v", two, one)
	}
	if one/two > 2 {
		t.Errorf("super-linear device scaling: %v", one/two)
	}
	// On a tiny mesh the granularity floor eats the second device's gain.
	mcSmall := perfmodel.CountsForCells(2562)
	oneS := SimulateStep(PatternDrivenSchedule(0.2), mcSmall, false).Time
	twoS := SimulateStep(twoPhiSchedule(0.2), mcSmall, false).Time
	gainLarge := one / two
	gainSmall := oneS / twoS
	if gainSmall >= gainLarge {
		t.Errorf("small-mesh device scaling (%v) should trail large-mesh (%v)", gainSmall, gainLarge)
	}
}

func TestTwoDeviceExecutorBitwiseMatchesSerial(t *testing.T) {
	m := mesh3(t)
	serial, _ := sw.NewSolver(m, sw.DefaultConfig(m))
	testcases.SetupTC5(serial)
	serial.Run(4)

	hyb, _ := sw.NewSolver(m, sw.DefaultConfig(m))
	e := NewHybridSolver(hyb, twoPhiSchedule(0.3), 2, 2)
	defer e.Close()
	if len(e.DevPools) != 2 {
		t.Fatalf("%d device pools, want 2", len(e.DevPools))
	}
	testcases.SetupTC5(hyb)
	hyb.Run(4)
	for c := range serial.State.H {
		if serial.State.H[c] != hyb.State.H[c] {
			t.Fatalf("two-device run diverges at cell %d", c)
		}
	}
	for ed := range serial.State.U {
		if serial.State.U[ed] != hyb.State.U[ed] {
			t.Fatalf("two-device run diverges at edge %d", ed)
		}
	}
}

func TestDevCountDefaultsToOne(t *testing.T) {
	n := Node{Dev: perfmodel.XeonPhi5110P(), DevOpt: perfmodel.AllOpt}
	if n.devCount() != 1 {
		t.Error("zero DevCount should mean 1")
	}
	t1 := n.DevPatternTime(100000, 10, 100)
	n.DevCount = 4
	t4 := n.DevPatternTime(100000, 10, 100)
	if t4 >= t1 {
		t.Error("4 devices not faster than 1")
	}
}
