package hybrid

import (
	"strings"
	"testing"

	"repro/internal/sw"
	"repro/internal/telemetry"
	"repro/internal/testcases"
)

func TestExecutorTelemetry(t *testing.T) {
	m := mesh3(t)
	s, err := sw.NewSolver(m, sw.DefaultConfig(m))
	if err != nil {
		t.Fatal(err)
	}
	e := NewHybridSolver(s, PatternDrivenSchedule(0.3), 2, 2)
	defer e.Close()
	tr := telemetry.NewTracer()
	reg := telemetry.NewRegistry()
	s.EnableTelemetry(tr, reg)
	e.EnableTelemetry(tr, reg)
	// SetupTC5 runs Init itself — with telemetry already attached, so the
	// init diagnostics/reconstruct pass is counted exactly once below.
	testcases.SetupTC5(s)
	steps := 2
	s.Run(steps)

	// Every output element of every pattern execution lands on exactly one
	// side, so host + dev element counters must equal the serial total.
	var want int64
	countKernel := func(name string, times int64) {
		for _, p := range s.KernelByName(name).Patterns {
			want += int64(p.N) * times
		}
	}
	// Init: diagnostics + reconstruct once. Per step: tend/enforce 4x,
	// substep 3x, accum 4x, diagnostics 4x, reconstruct 1x.
	countKernel("compute_solve_diagnostics", int64(1+4*steps))
	countKernel("mpas_reconstruct", int64(1+steps))
	countKernel("compute_tend", int64(4*steps))
	countKernel("enforce_boundary_edge", int64(4*steps))
	countKernel("compute_next_substep_state", int64(3*steps))
	countKernel("accumulative_update", int64(4*steps))
	host := reg.Counter("hybrid_host_elements_total").Value()
	dev := reg.Counter("hybrid_dev_elements_total").Value()
	if host+dev != want {
		t.Errorf("host(%d) + dev(%d) = %d elements, want %d", host, dev, host+dev, want)
	}
	if host == 0 || dev == 0 {
		t.Errorf("pattern-driven split should use both sides (host=%d dev=%d)", host, dev)
	}

	// The imbalance histogram sees every level that ran >1 concurrent unit,
	// and its observations are ratios >= 1.
	imb := reg.Histogram("hybrid_level_imbalance_ratio")
	if imb.Count() == 0 {
		t.Error("imbalance histogram recorded nothing")
	}
	if imb.Sum() < float64(imb.Count()) {
		t.Errorf("imbalance mean < 1 (sum=%g over %d)", imb.Sum(), imb.Count())
	}

	// Pool dispatch counters ticked on both sides.
	if reg.Counter("par_host_dispatches_total").Value() == 0 {
		t.Error("host pool dispatches not counted")
	}
	if reg.Counter("par_dev0_dispatches_total").Value() == 0 {
		t.Error("device pool dispatches not counted")
	}

	// Sim gauges mirror the accumulated simulated clock.
	if got := reg.Gauge("sim_time_seconds").Value(); got != e.SimTime() {
		t.Errorf("sim_time_seconds gauge = %g, want %g", got, e.SimTime())
	}
	if reg.Gauge("sim_host_busy_seconds").Value() <= 0 ||
		reg.Gauge("sim_dev_busy_seconds").Value() <= 0 {
		t.Error("busy gauges not populated")
	}

	// Level spans were emitted.
	var b strings.Builder
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "level_0") {
		t.Error("trace has no data-flow level spans")
	}
	if !strings.Contains(b.String(), "level_1") {
		t.Error("trace has no second-level spans (diagnostics kernel has >1 level)")
	}
}

// Telemetry must not change results: instrumented hybrid run stays bitwise
// identical to serial.
func TestExecutorTelemetryPreservesBitwiseResults(t *testing.T) {
	m := mesh3(t)
	run := func(instrument bool) *sw.Solver {
		s, err := sw.NewSolver(m, sw.DefaultConfig(m))
		if err != nil {
			t.Fatal(err)
		}
		e := NewHybridSolver(s, PatternDrivenSchedule(0.3), 2, 2)
		defer e.Close()
		if instrument {
			s.EnableTelemetry(telemetry.NewTracer(), telemetry.NewRegistry())
			e.EnableTelemetry(telemetry.NewTracer(), telemetry.NewRegistry())
		}
		testcases.SetupTC5(s)
		s.Run(3)
		return s
	}
	plain := run(false)
	instr := run(true)
	for c := range plain.State.H {
		if plain.State.H[c] != instr.State.H[c] {
			t.Fatalf("H differs at cell %d under telemetry", c)
		}
	}
	for e := range plain.State.U {
		if plain.State.U[e] != instr.State.U[e] {
			t.Fatalf("U differs at edge %d under telemetry", e)
		}
	}
}

// A ProfilingRunner wrapped around the executor feeds it single-pattern
// kernels that share the full kernel's name. The executor's per-name level
// cache (warmed by the full kernel during Init) must not be applied to those
// slices — regression test for an index-out-of-range panic.
func TestExecutorProfiledAfterFullKernels(t *testing.T) {
	m := mesh3(t)
	s, err := sw.NewSolver(m, sw.DefaultConfig(m))
	if err != nil {
		t.Fatal(err)
	}
	e := NewHybridSolver(s, PatternDrivenSchedule(0.3), 2, 2)
	defer e.Close()
	testcases.SetupTC5(s) // Init runs full kernels, warming the level cache
	s.Runner = sw.NewProfilingRunner(e)
	s.Run(2) // must not panic on cached multi-pattern levels
	prof := s.Runner.(*sw.ProfilingRunner)
	if len(prof.Report()) == 0 {
		t.Error("profiling through the executor produced no entries")
	}
}
