// Package hybrid implements the paper's hybrid CPU + many-core execution
// designs:
//
//   - the kernel-level design (§2.C, Figure 2): whole kernels are placed on
//     the host or the accelerator, with full arrays transferred at kernel
//     boundaries;
//   - the pattern-driven design (§3.C, Figure 4b): individual pattern
//     instances — and, for the "adjustable" ones, fractions of their index
//     ranges — are distributed between host and device, with data resident
//     on the device and only split fractions exchanged, computation on the
//     two processors running concurrently and transfers overlapped.
//
// Execution is real (host and device are two goroutine worker pools running
// the actual pattern kernels on disjoint ranges, synchronized by data-flow
// levels), while time is kept by the calibrated platform model of
// internal/perfmodel — the substitution DESIGN.md documents for the absent
// Xeon Phi hardware.
package hybrid

import (
	"repro/internal/pattern"
	"repro/internal/perfmodel"
)

// Side is a processor of the heterogeneous node.
type Side uint8

const (
	// Host is the multi-core CPU.
	Host Side = iota
	// Dev is the many-core accelerator.
	Dev
)

func (s Side) String() string {
	if s == Host {
		return "host"
	}
	return "device"
}

// Placement locates one pattern instance: HostFrac of its output range runs
// on the host, the rest on the device. 0 and 1 place it wholly.
type Placement struct {
	HostFrac float64
}

// Assignment maps Table I pattern IDs to placements. Patterns not present
// run wholly on the device.
type Assignment map[string]Placement

// HostFrac returns the host fraction for pattern id.
func (a Assignment) HostFrac(id string) float64 {
	if p, ok := a[id]; ok {
		return clamp01(p.HostFrac)
	}
	return 0
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// SerialAssignment places everything on the host — the original code.
func SerialAssignment() Assignment {
	a := Assignment{}
	for _, ins := range pattern.Table1 {
		a[ins.ID] = Placement{HostFrac: 1}
	}
	return a
}

// KernelLevelAssignment reproduces Figure 2: the time-consuming kernels
// (compute_tend, compute_solve_diagnostics, mpas_reconstruct) reside wholly
// on the accelerator; the light local kernels stay on the CPU, which also
// drives MPI. No pattern is split, so the host/device balance is whatever
// the kernel granularity dictates.
func KernelLevelAssignment() Assignment {
	a := Assignment{}
	hostKernels := map[string]bool{
		pattern.KernelEnforceBoundaryEdge: true,
		pattern.KernelNextSubstepState:    true,
		pattern.KernelAccumulativeUpdate:  true,
	}
	for _, ins := range pattern.Table1 {
		if hostKernels[ins.Kernel] {
			a[ins.ID] = Placement{HostFrac: 1}
		} else {
			a[ins.ID] = Placement{HostFrac: 0}
		}
	}
	return a
}

// PatternDrivenAssignment reproduces Figure 4(b): the wide edge stencils
// (B1, F, B2, D1/D2, H1, X3, X5) and vertex patterns (E, G) stay on the
// device; tend_h (A1) and the reconstruction (A4, X6) run on the CPU
// together with the CPU halves of the local updates; and the cell-based
// diagnostics (A2, A3, C2, H2 — the light-yellow "adjustable part") are
// split with the given host fraction, which the auto-tuner chooses per mesh
// size to balance load.
func PatternDrivenAssignment(adjustable float64) Assignment {
	f := clamp01(adjustable)
	a := Assignment{
		// compute_tend: A1 on the CPU, B1 on the device.
		"A1": {HostFrac: 1},
		"B1": {HostFrac: 0},
		// enforce_boundary_edge handled with the host's MPI duties.
		"X1": {HostFrac: 1},
		// Local substep/accumulate updates split evenly: both sides advance
		// the portions of the state they own.
		"X2": {HostFrac: f},
		"X3": {HostFrac: 0},
		"X4": {HostFrac: f},
		"X5": {HostFrac: 0},
		// solve_diagnostics: adjustable cell patterns split; edge/vertex
		// patterns on the device.
		"A2": {HostFrac: f},
		"A3": {HostFrac: f},
		"C2": {HostFrac: f},
		"H2": {HostFrac: f},
		"C1": {HostFrac: f},
		"D1": {HostFrac: 0},
		"D2": {HostFrac: 0},
		"E":  {HostFrac: 0},
		"F":  {HostFrac: 0},
		"G":  {HostFrac: 0},
		"H1": {HostFrac: 0},
		"B2": {HostFrac: 0},
		// mpas_reconstruct on the CPU (its products feed host-side output).
		"A4": {HostFrac: 1},
		"X6": {HostFrac: 1},
	}
	return a
}

// DeviceOnlyAssignment offloads every pattern to the accelerator, leaving
// the CPU to drive communication — the "port everything" alternative of
// §2.C.
func DeviceOnlyAssignment() Assignment {
	a := Assignment{}
	for _, ins := range pattern.Table1 {
		a[ins.ID] = Placement{HostFrac: 0}
	}
	return a
}

// Node is the heterogeneous platform: one host CPU socket plus one
// accelerator, joined by PCIe (Table II).
type Node struct {
	Host    perfmodel.Device
	Dev     perfmodel.Device
	Link    perfmodel.PCIe
	HostOpt perfmodel.Opt
	DevOpt  perfmodel.Opt
	// HostComputeFraction is the share of the host socket available for
	// pattern computation: the remaining cores drive the offload engine,
	// progress MPI and stage PCIe transfers (the paper's CPU side owns all
	// "Exchange halo" work in Figures 2 and 4).
	HostComputeFraction float64
	// DevCount is the number of identical accelerators attached to the
	// host (the paper's nodes carry two Phi 5110P each, though its runs
	// group one CPU with one Phi per MPI process). The device share of
	// every pattern is split evenly across them; the PCIe link is shared.
	// Zero means 1.
	DevCount int
}

// DefaultNode returns the paper's platform with all §4 optimizations.
func DefaultNode() Node {
	return Node{
		Host:                perfmodel.XeonE5_2680v2(),
		Dev:                 perfmodel.XeonPhi5110P(),
		Link:                perfmodel.DefaultPCIe(),
		HostOpt:             perfmodel.AllOpt,
		DevOpt:              perfmodel.AllOpt,
		HostComputeFraction: 0.35,
	}
}

// HostPatternTime is the host-side pattern cost including the availability
// derating.
func (n Node) HostPatternTime(count int, flops, bytes float64) float64 {
	return n.Host.PatternTime(count, flops, bytes, false, n.HostOpt) / n.HostComputeFraction
}

// devCount returns the accelerator count (at least 1).
func (n Node) devCount() int {
	if n.DevCount < 1 {
		return 1
	}
	return n.DevCount
}

// DevPatternTime is the device-side cost of computing count output elements
// split evenly across the node's accelerators (each pays its own
// granularity floor, so small patterns do not scale).
func (n Node) DevPatternTime(count int, flops, bytes float64) float64 {
	k := n.devCount()
	per := (count + k - 1) / k
	return n.Dev.PatternTime(per, flops, bytes, false, n.DevOpt)
}
