package hybrid_test

// Conformance suite for the hybrid executor: every schedule and migration
// fraction must reproduce the serial trajectory BITWISE — the executor only
// re-partitions pattern index ranges between host and device pools; each
// element is computed once with identical arithmetic (the property Figure 4b
// rests on).

import (
	"testing"

	"repro/internal/conform"
	"repro/internal/mesh"
)

func TestHybridSchedulesConform(t *testing.T) {
	m := mesh.MustBuild(2, mesh.Options{})
	c, err := conform.NamedCase("tc5", m, 3)
	if err != nil {
		t.Fatal(err)
	}
	base := conform.Baseline()
	ref, err := base.Run(c, true)
	if err != nil {
		t.Fatal(err)
	}
	strategies := []conform.Strategy{
		conform.HybridKernel(),
		conform.HybridPattern(0),
		conform.HybridPattern(0.25),
		conform.HybridPattern(0.5),
		conform.HybridPattern(0.75),
		conform.HybridPattern(1),
	}
	for _, s := range strategies {
		t.Run(s.Name, func(t *testing.T) {
			res, err := s.Run(c, true)
			if err != nil {
				t.Fatal(err)
			}
			d, ok := conform.CompareResults(ref, res, conform.ExactTol)
			if !ok {
				t.Errorf("diverged from serial baseline: %v", d)
			}
			if d.MaxULP != 0 {
				t.Errorf("not bitwise: %v", d)
			}
		})
	}
}
