package hybrid

import "repro/internal/perfmodel"

// TunePatternDriven searches the adjustable host fraction of the
// pattern-driven design (the light-yellow boxes of Figure 4b) for the value
// minimizing the simulated step time on a mesh of the given size — the
// paper's "operations can be adaptively controlled according to the
// configuration of the heterogeneous system, so that the load balance is
// improved".
func TunePatternDriven(mc perfmodel.MeshCounts) (best float64, bestTime float64) {
	bestTime = -1
	for f := 0.0; f <= 0.9001; f += 0.05 {
		t := SimulateStep(PatternDrivenSchedule(f), mc, false).Time
		if bestTime < 0 || t < bestTime {
			best, bestTime = f, t
		}
	}
	return best, bestTime
}

// Figure7Row is one mesh size of the paper's Figure 7.
type Figure7Row struct {
	Cells          int
	CPUSerial      float64 // seconds/step, original single-process code
	KernelLevel    float64
	PatternDriven  float64
	KernelSpeedup  float64
	PatternSpeedup float64
	TunedFraction  float64
}

// Figure7 computes the Figure 7 comparison for the given mesh sizes (the
// paper uses 40962, 163842, 655362 and 2621442 cells).
func Figure7(cellCounts []int) []Figure7Row {
	var rows []Figure7Row
	for _, n := range cellCounts {
		mc := perfmodel.CountsForCells(n)
		cpu := CPUSerialStep(mc)
		kl := SimulateStep(KernelLevelSchedule(), mc, false).Time
		frac, pd := TunePatternDriven(mc)
		rows = append(rows, Figure7Row{
			Cells:          n,
			CPUSerial:      cpu,
			KernelLevel:    kl,
			PatternDriven:  pd,
			KernelSpeedup:  cpu / kl,
			PatternSpeedup: cpu / pd,
			TunedFraction:  frac,
		})
	}
	return rows
}

// CPUSerialStep returns the modeled per-step time of the original code: one
// CPU core per MPI process, no threading, scatter-form loops.
func CPUSerialStep(mc perfmodel.MeshCounts) float64 {
	return perfmodel.StepTime(perfmodel.XeonE5_2680v2(), mc, perfmodel.Opt{})
}

// DeviceLadder reproduces Figure 6 (single-device optimization ladder) — a
// thin re-export so harness binaries depend only on this package.
func DeviceLadder(cells int) (labels []string, speedups []float64) {
	return perfmodel.Figure6Ladder(perfmodel.CountsForCells(cells))
}
