// Dataflow demonstrates the paper's §3 analysis machinery on its own: the
// Table I pattern inventory becomes a data-flow graph, whose topological
// levels expose the inherent parallelism the hybrid schedule exploits and
// whose cost-weighted critical path bounds how fast any schedule can be.
package main

import (
	"fmt"
	"strings"

	"repro/internal/dataflow"
	"repro/internal/perfmodel"
)

func main() {
	g := dataflow.BuildModel(false)
	fmt.Printf("data-flow diagram of one RK substage: %d pattern instances, %d edges\n\n",
		len(g.Nodes), len(g.Edges))

	fmt.Println("concurrency levels (patterns in a level may run in parallel):")
	for li, lv := range g.Levels() {
		ids := make([]string, len(lv))
		for i, n := range lv {
			ids[i] = g.Nodes[n].ID
		}
		fmt.Printf("  level %2d: %s\n", li, strings.Join(ids, " "))
	}

	// Weight nodes with the Xeon Phi cost model on the 30-km mesh.
	mc := perfmodel.CountsForCells(655362)
	dev := perfmodel.XeonPhi5110P()
	weight := func(i int) float64 {
		spec, ok := perfmodel.WorkTable[g.Nodes[i].ID]
		if !ok {
			return 0
		}
		return dev.PatternTime(mc.Elements(spec.Per), spec.Flops, spec.Bytes, false, perfmodel.AllOpt)
	}
	path, cost := g.CriticalPath(weight)
	total := 0.0
	for i := range g.Nodes {
		total += weight(i)
	}
	fmt.Printf("\ncritical path on the Phi (30-km mesh): %.2f ms of %.2f ms total work\n",
		cost*1000, total*1000)
	ids := make([]string, len(path))
	for i, n := range path {
		ids[i] = g.Nodes[n].ID
	}
	fmt.Printf("  %s\n", strings.Join(ids, " -> "))
	fmt.Printf("\nparallel slack: %.0f%% of the work lies off the critical path -\n",
		100*(1-cost/total))
	fmt.Println("that slack is what the pattern-driven hybrid schedule moves to the CPU.")
}
