// Heterogeneous compares the execution designs of the paper on one node:
// the original serial code, the kernel-level hybrid (Figure 2) and the
// pattern-driven hybrid (Figure 4b) with its adjustable load-balance
// fraction, on the simulated CPU + Xeon Phi platform. All three designs
// really execute and produce bitwise-identical physics; the simulated
// platform clock shows why the pattern-driven design wins.
package main

import (
	"fmt"
	"log"

	mpas "repro"
	"repro/internal/hybrid"
	"repro/internal/mesh"
	"repro/internal/perfmodel"
)

func main() {
	msh, err := mesh.Build(4, mesh.Options{LloydIterations: 2})
	if err != nil {
		log.Fatal(err)
	}
	mc := perfmodel.MeshCounts{Cells: msh.NCells, Edges: msh.NEdges, Vertices: msh.NVertices}

	// Sweep the adjustable fraction to see the load-balance trade-off.
	fmt.Println("pattern-driven adjustable fraction sweep (simulated 2562-cell step):")
	for f := 0.0; f <= 0.81; f += 0.2 {
		sim := hybrid.SimulateStep(hybrid.PatternDrivenSchedule(f), mc, false)
		fmt.Printf("  hostFrac %.1f: %.3f ms/step (host busy %.3f ms, dev busy %.3f ms)\n",
			f, sim.Time*1000, sim.HostBusy*1000, sim.DevBusy*1000)
	}
	best, bestT := hybrid.TunePatternDriven(mc)
	fmt.Printf("  tuned: hostFrac %.2f -> %.3f ms/step\n\n", best, bestT*1000)

	// Run all designs for real and verify identical physics.
	fmt.Println("running 10 real steps of TC5 under each design:")
	var ref []float64
	for _, mode := range []mpas.Mode{mpas.Serial, mpas.KernelLevel, mpas.PatternDriven} {
		m, err := mpas.New(mpas.Options{Mesh: msh, TestCase: mpas.TC5, Mode: mode,
			AdjustableFraction: best})
		if err != nil {
			log.Fatal(err)
		}
		wall := mpas.MeasuredStep(m, 10)
		simNote := ""
		if t := m.SimulatedPlatformTime(); t > 0 {
			simNote = fmt.Sprintf(", %.2f ms/step on simulated CPU+Phi", t*1000/float64(m.Solver.StepCount))
		}
		fmt.Printf("  %-15s %8.2f ms/step real Go time%s\n", mode, float64(wall.Microseconds())/1000, simNote)
		if ref == nil {
			ref = append([]float64(nil), m.Solver.State.H...)
		} else {
			for c := range ref {
				if m.Solver.State.H[c] != ref[c] {
					log.Fatalf("%s diverged from serial at cell %d!", mode, c)
				}
			}
			fmt.Printf("  %-15s physics bitwise-identical to serial ✓\n", "")
		}
		m.Close()
	}
}
