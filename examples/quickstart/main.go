// Quickstart: build a shallow-water model on a quasi-uniform SCVT mesh, run
// it for a few hours of simulated time, and watch the conserved quantities.
package main

import (
	"fmt"
	"log"

	mpas "repro"
)

func main() {
	// A 480-km mesh (2562 cells) with the Williamson test case 5 initial
	// condition: westerly flow impinging on an isolated mountain.
	model, err := mpas.New(mpas.Options{
		Level:    4,
		TestCase: mpas.TC5,
		Mode:     mpas.Serial,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer model.Close()

	fmt.Println(model.Mesh)
	fmt.Printf("time step: %.0f s\n\n", model.Config.Dt)

	inv0 := model.Invariants()
	for hour := 6; hour <= 24; hour += 6 {
		model.Run(int(6 * 3600 / model.Config.Dt))
		inv := model.Invariants()
		fmt.Printf("t=%2dh  thickness [%7.1f, %7.1f] m   max|u| %5.2f m/s   mass drift %+.1e\n",
			hour, inv.MinH, inv.MaxH, inv.MaxSpeed, (inv.Mass-inv0.Mass)/inv0.Mass)
	}

	fmt.Println("\nRK-4 with the TRiSK scheme conserves mass to roundoff -")
	fmt.Println("the drift above is pure floating-point noise.")
}
