// Tracers advects passive tracers with the shallow-water flow in
// conservative (h*q) form, demonstrating the two discrete guarantees the
// scheme provides: tracer mass is conserved to roundoff, and an initially
// uniform tracer stays uniform to the LAST BIT, because its flux divergence
// is computed by the same sums as the thickness tendency.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/mesh"
	"repro/internal/sw"
	"repro/internal/testcases"
)

func main() {
	m, err := mesh.Build(4, mesh.Options{LloydIterations: 2})
	if err != nil {
		log.Fatal(err)
	}
	s, err := sw.NewSolver(m, sw.DefaultConfig(m))
	if err != nil {
		log.Fatal(err)
	}
	testcases.SetupTC5(s)

	ones := make([]float64, m.NCells)
	blob := make([]float64, m.NCells)
	for c := range ones {
		ones[c] = 1
		d := math.Hypot(m.LatCell[c]-0.5, m.LonCell[c]-1.0)
		blob[c] = math.Exp(-d * d / 0.1)
	}
	uniform := s.AddTracer("uniform", ones)
	plume := s.AddTracer("plume", blob)
	mass0 := s.TracerMass(plume)

	fmt.Println("advecting two tracers through 2 days of TC5 flow...")
	s.Run(int(2 * testcases.Day / s.Cfg.Dt))

	q := s.Concentration(uniform, nil)
	worst := 0.0
	for _, v := range q {
		if d := math.Abs(v - 1); d > worst {
			worst = d
		}
	}
	fmt.Printf("uniform tracer max deviation from 1: %g (exact constancy)\n", worst)

	mass1 := s.TracerMass(plume)
	fmt.Printf("plume tracer mass drift: %.2e (conservative transport)\n",
		(mass1-mass0)/mass0)

	qp := s.Concentration(plume, nil)
	maxQ, argmax := 0.0, 0
	for c, v := range qp {
		if v > maxQ {
			maxQ, argmax = v, c
		}
	}
	fmt.Printf("plume peak now %.3f at (lat %.2f, lon %.2f) — advected east by the flow\n",
		maxQ, m.LatCell[argmax], m.LonCell[argmax])
}
