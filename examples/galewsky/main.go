// Galewsky integrates the Galewsky et al. (2004) barotropic-instability
// test: a balanced mid-latitude jet seeded with a small height bump that
// the jet's shear instability amplifies into a vortex train by day ~5. The
// relative vorticity of the northern hemisphere is rendered as ASCII maps
// so the roll-up is visible in the terminal.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/mesh"
	"repro/internal/raster"
	"repro/internal/sw"
	"repro/internal/testcases"
)

func main() {
	m, err := mesh.Build(4, mesh.Options{LloydIterations: 2})
	if err != nil {
		log.Fatal(err)
	}
	cfg := sw.DefaultConfig(m)
	// A touch of del^2 viscosity keeps the sharp vorticity filaments
	// representable at this coarse resolution.
	cfg.Viscosity = 1e5
	s, err := sw.NewSolver(m, cfg)
	if err != nil {
		log.Fatal(err)
	}
	testcases.SetupGalewsky(s, true)

	fmt.Println("Galewsky barotropic instability (2562 cells, del2 viscosity 1e5)")
	fmt.Println("relative vorticity at cells, 20N-80N band:")

	show := func(day int) {
		// Vorticity averaged to cells for plotting.
		field := append([]float64(nil), s.Diag.VorticityCell...)
		// Mask to the northern band by zeroing elsewhere (the raster would
		// otherwise be dominated by the empty south).
		g := raster.FromCellField(m, field, 36, 72)
		g.FillEmpty()
		// Print rows 22..34 (roughly 20N..80N).
		art := g.ASCII()
		rows := splitLines(art)
		fmt.Printf("day %d %s\n", day, g.Legend("1/s"))
		for r := 2; r <= 14; r++ { // top rows = north
			fmt.Printf("  |%s|\n", rows[r])
		}
	}

	perDay := int(testcases.Day / cfg.Dt)
	show(0)
	for day := 1; day <= 6; day++ {
		s.Run(perDay)
		inv := s.ComputeInvariants()
		if math.IsNaN(inv.TotalEnergy) {
			log.Fatal("model blew up")
		}
		if day == 4 || day == 6 {
			show(day)
		}
	}
	fmt.Println("the initially zonal vorticity strip has rolled up into discrete vortices.")
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return out
}
