// Distributed runs the shallow-water model across several simulated MPI
// ranks: the sphere is decomposed by recursive bisection, each rank owns a
// contiguous patch plus a three-layer halo, and halo exchanges fire at every
// RK substage — the communication structure of the paper's scaling
// experiments (Figures 8 and 9). The run verifies that the distributed
// trajectory matches a serial reference bitwise on owned cells.
package main

import (
	"fmt"
	"log"
	"sync"

	"repro/internal/mesh"
	"repro/internal/mpisim"
	"repro/internal/sw"
	"repro/internal/testcases"
)

func main() {
	const ranks = 4
	const steps = 10

	msh, err := mesh.Build(4, mesh.Options{LloydIterations: 2})
	if err != nil {
		log.Fatal(err)
	}
	cfg := sw.DefaultConfig(msh)

	// Serial reference.
	ref, err := sw.NewSolver(msh, cfg)
	if err != nil {
		log.Fatal(err)
	}
	testcases.SetupTC5(ref)
	ref.Run(steps)

	// Decompose and run.
	d, err := mpisim.Decompose(msh, ranks)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s decomposed for %d ranks:\n", msh, ranks)
	for r, l := range d.Locals {
		fmt.Printf("  rank %d: %5d owned cells, %4d halo cells, halo message %5.1f KB, peers %v\n",
			r, l.NOwnedCells, l.M.NCells-l.NOwnedCells,
			float64(d.Plans[r].HaloBytes())/1024, d.Plans[r].Peers)
	}

	var mu sync.Mutex
	matches := 0
	world := mpisim.NewWorld(ranks)
	world.Run(func(c *mpisim.Comm) {
		rs, err := mpisim.NewRankSolver(c, d, cfg, testcases.SetupTC5)
		if err != nil {
			log.Fatal(err)
		}
		rs.Run(steps)

		mass := rs.GlobalMass()
		if c.Rank == 0 {
			fmt.Printf("\nafter %d steps: global mass %.6e kg/m (allreduced)\n", steps, mass)
		}

		ok := true
		for lc := 0; lc < rs.Local.NOwnedCells; lc++ {
			if rs.S.State.H[lc] != ref.State.H[rs.Local.CellL2G[lc]] {
				ok = false
				break
			}
		}
		mu.Lock()
		if ok {
			matches++
		}
		mu.Unlock()
	})

	fmt.Printf("%d/%d ranks bitwise-match the serial reference on owned cells\n", matches, ranks)
	if matches != ranks {
		log.Fatal("distributed run diverged from serial")
	}
}
