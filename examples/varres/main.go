// Varres demonstrates variable-resolution SCVT meshes — MPAS's defining
// capability and the natural extension of the paper's uniform-mesh setup: a
// density function concentrates cells over the TC5 mountain, and the run is
// compared on a common lat-lon raster against a uniform mesh of the same
// cell count and a finer reference mesh.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/geom"
	"repro/internal/mesh"
	"repro/internal/raster"
	"repro/internal/sw"
	"repro/internal/testcases"
)

func main() {
	center := geom.FromLatLon(testcases.TC5MountainCenterLat, testcases.TC5MountainCenterLon)
	density := func(p geom.Vec3) float64 {
		d := geom.ArcLength(p, center)
		t := 0.5 * (1 + math.Tanh((0.5-d)/0.25))
		return 1 + 15*t
	}

	fmt.Println("building meshes (uniform L4, variable-resolution L4, reference L5)...")
	uniform := mesh.MustBuild(4, mesh.Options{LloydIterations: 2})
	varres := mesh.MustBuild(4, mesh.Options{
		LloydIterations: 120, LloydRelaxation: 1.5, Density: density,
	})
	reference := mesh.MustBuild(5, mesh.Options{LloydIterations: 2})

	stat := func(m *mesh.Mesh) (nearKm, globalKm float64) {
		var sum float64
		var n int
		for e := 0; e < m.NEdges; e++ {
			if geom.ArcLength(m.XEdge[e], center) < 0.3 {
				sum += m.DcEdge[e]
				n++
			}
		}
		return sum / float64(n) / 1000, m.ComputeStats().ResolutionKm
	}
	un, ug := stat(uniform)
	vn, vg := stat(varres)
	fmt.Printf("  uniform : %.0f km near mountain, %.0f km global mean\n", un, ug)
	fmt.Printf("  varres  : %.0f km near mountain, %.0f km global mean (same %d cells)\n\n",
		vn, vg, varres.NCells)

	const days = 1.0
	run := func(m *mesh.Mesh) *sw.Solver {
		s, err := sw.NewSolver(m, sw.DefaultConfig(m))
		if err != nil {
			log.Fatal(err)
		}
		testcases.SetupTC5(s)
		s.Run(int(days * testcases.Day / s.Cfg.Dt))
		return s
	}
	fmt.Printf("running TC5 for %.0f day on all three meshes...\n", days)
	sU, sV, sR := run(uniform), run(varres), run(reference)

	// Compare total height on a common raster, inside the mountain window.
	const nlat, nlon = 36, 72
	gU := raster.FromCellField(uniform, testcases.TotalHeight(sU), nlat, nlon)
	gV := raster.FromCellField(varres, testcases.TotalHeight(sV), nlat, nlon)
	gR := raster.FromCellField(reference, testcases.TotalHeight(sR), nlat, nlon)
	for _, g := range []*raster.Grid{gU, gV, gR} {
		g.FillEmpty()
	}
	rmse := func(g *raster.Grid) float64 {
		sum, n := 0.0, 0
		for i := 0; i < nlat; i++ {
			for j := 0; j < nlon; j++ {
				lat := (float64(i)+0.5)/nlat*math.Pi - math.Pi/2
				lon := (float64(j) + 0.5) / nlon * 2 * math.Pi
				p := geom.FromLatLon(lat, lon)
				if geom.ArcLength(p, center) > 0.45 {
					continue
				}
				d := g.At(i, j) - gR.At(i, j)
				sum += d * d
				n++
			}
		}
		return math.Sqrt(sum / float64(n))
	}
	eU, eV := rmse(gU), rmse(gV)
	fmt.Printf("\nRMS height difference vs fine reference, mountain region:\n")
	fmt.Printf("  uniform mesh            : %.2f m\n", eU)
	fmt.Printf("  variable-resolution mesh: %.2f m\n", eV)
	if eV < eU {
		fmt.Println("  -> local refinement improved the mountain-region solution")
	} else {
		fmt.Println("  -> no improvement at this horizon (try longer runs / stronger contrast)")
	}
}
