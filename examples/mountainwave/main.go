// Mountainwave integrates Williamson test case 5 — zonal flow over an
// isolated mountain, the scenario of the paper's Figure 5 — for several
// simulated days and renders the total height field h+b along the
// mountain's latitude band as an ASCII profile, so the lee wave train
// excited by the mountain is visible in the terminal.
package main

import (
	"fmt"
	"log"
	"math"
	"sort"
	"strings"

	mpas "repro"
	"repro/internal/testcases"
)

func main() {
	model, err := mpas.New(mpas.Options{
		Level:    4,
		TestCase: mpas.TC5,
		Mode:     mpas.Threaded,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer model.Close()

	fmt.Println("Williamson TC5: zonal flow over an isolated mountain")
	fmt.Printf("mountain: peak 2000 m at lon=%.0f°, lat=%.0f°\n\n",
		testcases.TC5MountainCenterLon*180/math.Pi,
		testcases.TC5MountainCenterLat*180/math.Pi)

	profile(model, 0)
	for day := 1; day <= 5; day++ {
		model.RunDays(1)
		inv := model.Invariants()
		if math.IsNaN(inv.TotalEnergy) {
			log.Fatal("model blew up")
		}
		profile(model, day)
	}
}

// profile prints h+b sampled along the mountain latitude as an ASCII strip.
func profile(model *mpas.Model, day int) {
	m := model.Mesh
	th := model.TotalHeight()
	band := testcases.TC5MountainCenterLat

	type sample struct {
		lon, h float64
	}
	var samples []sample
	for c := 0; c < m.NCells; c++ {
		if math.Abs(m.LatCell[c]-band) < 0.06 {
			samples = append(samples, sample{m.LonCell[c], th[c]})
		}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i].lon < samples[j].lon })

	// Bin to 72 columns of 5 degrees.
	const cols = 72
	sum := make([]float64, cols)
	cnt := make([]int, cols)
	for _, s := range samples {
		b := int(s.lon / (2 * math.Pi) * cols)
		if b >= cols {
			b = cols - 1
		}
		sum[b] += s.h
		cnt[b]++
	}
	min, max := math.Inf(1), math.Inf(-1)
	vals := make([]float64, cols)
	for b := range vals {
		if cnt[b] > 0 {
			vals[b] = sum[b] / float64(cnt[b])
			min = math.Min(min, vals[b])
			max = math.Max(max, vals[b])
		}
	}
	glyphs := " .:-=+*#%@"
	var sb strings.Builder
	for b := range vals {
		if cnt[b] == 0 {
			sb.WriteByte(' ')
			continue
		}
		g := int((vals[b] - min) / (max - min + 1e-9) * float64(len(glyphs)-1))
		sb.WriteByte(glyphs[g])
	}
	fmt.Printf("day %d  h+b along lat 30°N  [%6.0f..%6.0f m]\n  |%s|\n", day, min, max, sb.String())
}
