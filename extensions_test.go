package mpas

import (
	"math"
	"testing"
)

func TestTC1Facade(t *testing.T) {
	m := newModel(t, Options{Level: 3, TestCase: TC1})
	u0 := append([]float64(nil), m.Solver.State.U...)
	h0 := append([]float64(nil), m.Solver.State.H...)
	m.Run(10)
	for e := range u0 {
		if m.Solver.State.U[e] != u0[e] {
			t.Fatal("TC1 velocity not frozen through the facade")
		}
	}
	changed := false
	for c := range h0 {
		if m.Solver.State.H[c] != h0[c] {
			changed = true
			break
		}
	}
	if !changed {
		t.Error("TC1 tracer did not advect")
	}
}

func TestGalewskyFacade(t *testing.T) {
	m := newModel(t, Options{Level: 3, TestCase: Galewsky})
	inv0 := m.Invariants()
	if inv0.MaxSpeed < 70 || inv0.MaxSpeed > 90 {
		t.Errorf("Galewsky jet speed %v, want ~80", inv0.MaxSpeed)
	}
	m.Run(10)
	inv := m.Invariants()
	if math.IsNaN(inv.TotalEnergy) {
		t.Fatal("Galewsky run blew up")
	}
	if rel := math.Abs(inv.Mass-inv0.Mass) / inv0.Mass; rel > 1e-13 {
		t.Errorf("mass drift %v", rel)
	}
}

func TestViscousModelFacade(t *testing.T) {
	m := newModel(t, Options{Level: 3, TestCase: TC6})
	m.Solver.Cfg.Viscosity = 1e5
	e0 := m.Invariants().TotalEnergy
	m.Run(15)
	if m.Invariants().TotalEnergy >= e0 {
		t.Error("viscosity through facade did not damp energy")
	}
}

func TestCheckpointThroughFacade(t *testing.T) {
	a := newModel(t, Options{Level: 2, TestCase: TC5})
	a.Run(3)
	dir := t.TempDir()
	if err := a.Solver.SaveCheckpoint(dir + "/c.ckpt"); err != nil {
		t.Fatal(err)
	}
	b := newModel(t, Options{Mesh: a.Mesh, TestCase: TC5})
	if err := b.Solver.LoadCheckpoint(dir + "/c.ckpt"); err != nil {
		t.Fatal(err)
	}
	a.Run(2)
	b.Run(2)
	for c := range a.Solver.State.H {
		if a.Solver.State.H[c] != b.Solver.State.H[c] {
			t.Fatal("facade checkpoint restart diverged")
		}
	}
}
