package mpas

// The benchmark harness: one benchmark per table/figure of the paper's
// evaluation section plus the §4 ablations. Modeled platform quantities
// (speedups, seconds/step on the simulated CPU+Phi node) are attached to
// each benchmark via ReportMetric, so `go test -bench=. -benchmem` prints
// both the real Go wall-clock of the executed configuration and the
// simulated-platform series the paper reports. EXPERIMENTS.md records the
// paper-vs-reproduced comparison.

import (
	"fmt"
	"testing"

	"repro/internal/hybrid"
	"repro/internal/mesh"
	"repro/internal/mpisim"
	"repro/internal/perfmodel"
)

var benchMeshes = map[int]*mesh.Mesh{}

func benchMesh(b testing.TB, level int) *mesh.Mesh {
	if m, ok := benchMeshes[level]; ok {
		return m
	}
	m, err := mesh.Build(level, mesh.Options{LloydIterations: 1})
	if err != nil {
		b.Fatal(err)
	}
	benchMeshes[level] = m
	return m
}

// TestPlanStepZeroAllocBigMesh is the allocation regression gate at the
// first Table-III size (level 7, 163842 cells): a compiled-plan step and a
// float32 fast-mode step must run without a single heap allocation — at
// 2.6M cells even one small alloc per kernel launch becomes GC pressure
// that breaks the Figure-6 scaling story. Build is Lloyd-free: relaxation
// changes geometry, not the allocation behavior under test.
func TestPlanStepZeroAllocBigMesh(t *testing.T) {
	if testing.Short() {
		t.Skip("level-7 mesh build is slow; skipped under -short")
	}
	if raceDetectorEnabled {
		// Under -race the unchecked kernel views fall back to checked
		// slices, so this build doesn't exercise the code path being
		// gated, and the level-7 build pushes the package past go test's
		// default timeout. The alloc property is asserted in the normal
		// build (scripts/ci.sh runs this test without -race).
		t.Skip("alloc gate runs in the non-race build only")
	}
	msh, err := mesh.Build(7, mesh.Options{LloydIterations: 0})
	if err != nil {
		t.Fatal(err)
	}
	if msh.NCells != 163842 {
		t.Fatalf("level 7 has %d cells, want 163842", msh.NCells)
	}
	for _, tc := range []struct {
		name      string
		mode      Mode
		precision string
	}{
		{"plan", Plan, ""},
		{"taskplan", TaskPlan, ""},
		{"fast32", Plan, "float32"},
	} {
		m, err := New(Options{Mesh: msh, TestCase: TC5, Mode: tc.mode, Precision: tc.precision})
		if err != nil {
			t.Fatal(err)
		}
		m.Step() // compile/warm outside the measured window
		if a := testing.AllocsPerRun(2, m.Step); a != 0 {
			t.Errorf("%s: %v allocs per step at 163842 cells, want 0", tc.name, a)
		}
		m.Close()
	}
}

// BenchmarkTable3MeshBuild regenerates Table III construction: SCVT mesh
// building per level (real work).
func BenchmarkTable3MeshBuild(b *testing.B) {
	for _, level := range []int{3, 4, 5} {
		b.Run(fmt.Sprintf("level%d", level), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := mesh.Build(level, mesh.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig5Validation runs the Figure 5 correctness configuration (TC5,
// serial vs pattern-driven hybrid) and reports the relative difference.
func BenchmarkFig5Validation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := Figure5(3, 0.05)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MaxAbsDiff/res.FieldScale, "relDiff")
	}
}

// BenchmarkFig6OptimizationLadder reports the modeled Figure 6 speedups and
// times the model evaluation itself.
func BenchmarkFig6OptimizationLadder(b *testing.B) {
	var labels []string
	var sp []float64
	for i := 0; i < b.N; i++ {
		labels, sp = hybrid.DeviceLadder(655362)
	}
	for i := range labels {
		b.ReportMetric(sp[i], labels[i]+"_x")
	}
}

// BenchmarkFig7Implementations reports the modeled Figure 7 speedups per
// paper mesh size.
func BenchmarkFig7Implementations(b *testing.B) {
	for _, cells := range PaperMeshCells {
		b.Run(fmt.Sprintf("cells%d", cells), func(b *testing.B) {
			var rows []hybrid.Figure7Row
			for i := 0; i < b.N; i++ {
				rows = hybrid.Figure7([]int{cells})
			}
			r := rows[0]
			b.ReportMetric(r.KernelSpeedup, "kernel_x")
			b.ReportMetric(r.PatternSpeedup, "pattern_x")
			b.ReportMetric(r.CPUSerial, "cpu_s/step")
			b.ReportMetric(r.PatternDriven, "hybrid_s/step")
		})
	}
}

// BenchmarkFig7RealExecution times REAL steps of each implementation on an
// actually-built mesh (level 5, 10242 cells), complementing the modeled
// figure with measured Go wall-clock.
func BenchmarkFig7RealExecution(b *testing.B) {
	msh := benchMesh(b, 5)
	for _, mode := range []Mode{Serial, Threaded, KernelLevel, PatternDriven} {
		b.Run(mode.String(), func(b *testing.B) {
			m, err := New(Options{Mesh: msh, TestCase: TC5, Mode: mode, AdjustableFraction: 0.3})
			if err != nil {
				b.Fatal(err)
			}
			defer m.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Step()
			}
		})
	}
}

// BenchmarkFig8StrongScaling reports the modeled strong-scaling series for
// both paper meshes.
func BenchmarkFig8StrongScaling(b *testing.B) {
	for _, cells := range []int{655362, 2621442} {
		b.Run(fmt.Sprintf("cells%d", cells), func(b *testing.B) {
			var pts []mpisim.ScalingPoint
			for i := 0; i < b.N; i++ {
				pts = mpisim.StrongScaling(cells, []int{1, 64})
			}
			b.ReportMetric(pts[0].HybridTime, "hybrid_P1_s")
			b.ReportMetric(pts[1].HybridTime, "hybrid_P64_s")
			b.ReportMetric(pts[0].CPUTime, "cpu_P1_s")
			b.ReportMetric(pts[1].CPUTime, "cpu_P64_s")
		})
	}
}

// BenchmarkFig8RealDistributed times a real multi-rank strong-scaling run
// (goroutine ranks with real halo exchanges) on a built mesh.
func BenchmarkFig8RealDistributed(b *testing.B) {
	msh := benchMesh(b, 5)
	for _, ranks := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("ranks%d", ranks), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := DistributedRun(msh, ranks, 1, TC5); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig9WeakScaling reports the modeled weak-scaling series.
func BenchmarkFig9WeakScaling(b *testing.B) {
	var pts []mpisim.ScalingPoint
	for i := 0; i < b.N; i++ {
		pts = mpisim.WeakScaling(40962, []int{1, 4, 16, 64})
	}
	for _, pt := range pts {
		b.ReportMetric(pt.HybridTime, fmt.Sprintf("hybrid_P%d_s", pt.Procs))
	}
	b.ReportMetric(pts[0].CPUTime, "cpu_P1_s")
	b.ReportMetric(pts[len(pts)-1].CPUTime, "cpu_P64_s")
}

// BenchmarkAblationTransferResidency isolates §4.A: resident device data vs
// per-kernel transfers, on the modeled platform.
func BenchmarkAblationTransferResidency(b *testing.B) {
	mc := perfmodel.CountsForCells(655362)
	resident := hybrid.PatternDrivenSchedule(0.3)
	shipping := *resident
	shipping.ResidentData = false
	var tRes, tShip float64
	for i := 0; i < b.N; i++ {
		tRes = hybrid.SimulateStep(resident, mc, false).Time
		tShip = hybrid.SimulateStep(&shipping, mc, false).Time
	}
	b.ReportMetric(tShip/tRes, "residency_gain_x")
}

// BenchmarkAblationOverlap isolates the pattern-driven design's transfer
// overlap.
func BenchmarkAblationOverlap(b *testing.B) {
	mc := perfmodel.CountsForCells(655362)
	over := hybrid.PatternDrivenSchedule(0.3)
	seq := *over
	seq.OverlapTransfers = false
	var tOver, tSeq float64
	for i := 0; i < b.N; i++ {
		tOver = hybrid.SimulateStep(over, mc, false).Time
		tSeq = hybrid.SimulateStep(&seq, mc, false).Time
	}
	b.ReportMetric(tSeq/tOver, "overlap_gain_x")
}

// BenchmarkRealStepByLevel is the raw solver throughput on real meshes.
func BenchmarkRealStepByLevel(b *testing.B) {
	for _, level := range []int{3, 4, 5} {
		msh := benchMesh(b, level)
		b.Run(fmt.Sprintf("cells%d", msh.NCells), func(b *testing.B) {
			m, err := New(Options{Mesh: msh, TestCase: TC5})
			if err != nil {
				b.Fatal(err)
			}
			defer m.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Step()
			}
			cellsPerSec := float64(msh.NCells) * float64(b.N)
			b.ReportMetric(cellsPerSec/b.Elapsed().Seconds(), "cells/s")
		})
	}
}
