//go:build !race

package mpas

const raceDetectorEnabled = false
