//go:build race

package mpas

// raceDetectorEnabled mirrors the build's -race flag for tests that must
// scale themselves down under the detector's ~10x slowdown.
const raceDetectorEnabled = true
