package mpas

import (
	"fmt"
	"time"

	"repro/internal/hybrid"
	"repro/internal/mesh"
	"repro/internal/mpisim"
	"repro/internal/pattern"
	"repro/internal/perfmodel"
	"repro/internal/results"
	"repro/internal/sw"
	"repro/internal/testcases"
)

// This file is the experiment harness: one entry point per table and figure
// of the paper's evaluation section, each returning a results.Table that
// prints the same rows/series the paper reports.

func meshCounts(m *mesh.Mesh) perfmodel.MeshCounts {
	return perfmodel.MeshCounts{Cells: m.NCells, Edges: m.NEdges, Vertices: m.NVertices}
}

// PaperMeshCells are the Table III mesh sizes (120, 60, 30, 15 km).
var PaperMeshCells = []int{40962, 163842, 655362, 2621442}

// Table1 renders the pattern-instance inventory (paper Table I).
func Table1() *results.Table {
	t := results.NewTable("Table I: pattern instances of the shallow-water model",
		"Kernel", "Pattern", "Shape", "Output", "Reads", "Writes")
	for _, k := range pattern.Kernels() {
		for _, ins := range pattern.KernelInstances(k) {
			t.AddRow(ins.Kernel, ins.ID, ins.Shape.String(), ins.Out.String(),
				join(ins.Reads), join(ins.Writes))
		}
	}
	return t
}

func join(s []string) string {
	out := ""
	for i, v := range s {
		if i > 0 {
			out += ","
		}
		out += v
	}
	return out
}

// Table2 renders the simulated platform configuration (paper Table II).
func Table2() *results.Table {
	t := results.NewTable("Table II: simulated platform configuration",
		"Device", "Cores", "Threads/core", "Freq(GHz)", "EffSerialBW(GB/s)", "EffParallelBW(GB/s)")
	for _, d := range []perfmodel.Device{perfmodel.XeonE5_2680v2(), perfmodel.XeonPhi5110P()} {
		t.AddRow(d.Name, d.Cores, d.ThreadsPerCore, d.FreqGHz, d.SerialBW, d.ParallelBW)
	}
	return t
}

// Table3 renders the mesh inventory (paper Table III), building meshes up to
// maxLevel for real statistics and using closed-form counts beyond.
func Table3(maxBuildLevel int) *results.Table {
	t := results.NewTable("Table III: quasi-uniform SCVT meshes",
		"Level", "Resolution(km)", "Cells", "Edges", "Vertices", "Built")
	for level := 6; level <= 9; level++ {
		cells := 10*(1<<(2*uint(level))) + 2
		resKm := map[int]int{6: 120, 7: 60, 8: 30, 9: 15}[level]
		if level <= maxBuildLevel {
			m := mesh.MustBuild(level, mesh.Options{})
			st := m.ComputeStats()
			t.AddRow(level, fmt.Sprintf("%d (measured %.0f)", resKm, st.ResolutionKm),
				m.NCells, m.NEdges, m.NVertices, "yes")
		} else {
			t.AddRow(level, resKm, cells, 3*cells-6, 2*cells-4, "counts only")
		}
	}
	return t
}

// Figure5Result carries the correctness-validation outcome.
type Figure5Result struct {
	Days         float64
	Norms        testcases.Norms // hybrid vs serial total height
	MaxAbsDiff   float64         // meters
	FieldScale   float64         // meters
	SerialHeight []float64
	HybridHeight []float64
	LatCell      []float64
	LonCell      []float64
}

// Figure5 runs Williamson TC5 for the given days at the given mesh level
// with both the serial code and the pattern-driven hybrid executor, and
// compares the total height fields — the paper's Figure 5 (which uses the
// 120-km mesh, level 6, at day 15).
func Figure5(level int, days float64) (*Figure5Result, error) {
	m, err := mesh.Build(level, mesh.Options{LloydIterations: 2})
	if err != nil {
		return nil, err
	}
	serial, err := New(Options{Mesh: m, TestCase: TC5, Mode: Serial})
	if err != nil {
		return nil, err
	}
	defer serial.Close()
	hyb, err := New(Options{Mesh: m, TestCase: TC5, Mode: PatternDriven, AdjustableFraction: 0.3})
	if err != nil {
		return nil, err
	}
	defer hyb.Close()
	serial.RunDays(days)
	hyb.RunDays(days)
	sh := serial.TotalHeight()
	hh := hyb.TotalHeight()
	diff, scale := testcases.MaxAbsDiff(sh, hh)
	return &Figure5Result{
		Days:         days,
		Norms:        testcases.HeightNorms(m, hh, sh),
		MaxAbsDiff:   diff,
		FieldScale:   scale,
		SerialHeight: sh,
		HybridHeight: hh,
		LatCell:      m.LatCell,
		LonCell:      m.LonCell,
	}, nil
}

// Figure6 renders the single-device optimization ladder (paper Figure 6,
// 30-km mesh).
func Figure6(cells int) *results.Table {
	t := results.NewTable(
		fmt.Sprintf("Figure 6: Xeon Phi optimization ladder (%d cells)", cells),
		"Optimization", "Speedup vs serial baseline")
	labels, sp := hybrid.DeviceLadder(cells)
	for i := range labels {
		t.AddRow(labels[i], sp[i])
	}
	return t
}

// Figure7 renders the implementation comparison (paper Figure 7).
func Figure7() *results.Table {
	t := results.NewTable("Figure 7: execution time per step and speedup vs single-core CPU",
		"Cells", "CPU(s)", "KernelLevel(s)", "PatternDriven(s)",
		"KernelSpeedup", "PatternSpeedup", "TunedHostFrac")
	for _, r := range hybrid.Figure7(PaperMeshCells) {
		t.AddRow(r.Cells, r.CPUSerial, r.KernelLevel, r.PatternDriven,
			r.KernelSpeedup, r.PatternSpeedup, r.TunedFraction)
	}
	return t
}

// Figure8 renders a strong-scaling curve (paper Figure 8; 655362 cells for
// the 30-km mesh of Fig 8a, 2621442 for the 15-km mesh of Fig 8b).
func Figure8(totalCells int) *results.Table {
	t := results.NewTable(
		fmt.Sprintf("Figure 8: strong scaling, %d cells", totalCells),
		"Procs", "CPU(s/step)", "Hybrid(s/step)", "CPUEff", "HybridEff")
	pts := mpisim.StrongScaling(totalCells, []int{1, 2, 4, 8, 16, 32, 64})
	cpuEff := mpisim.ParallelEfficiency(pts, func(p mpisim.ScalingPoint) float64 { return p.CPUTime })
	hybEff := mpisim.ParallelEfficiency(pts, func(p mpisim.ScalingPoint) float64 { return p.HybridTime })
	for i, pt := range pts {
		t.AddRow(pt.Procs, pt.CPUTime, pt.HybridTime, cpuEff[i], hybEff[i])
	}
	return t
}

// Figure9 renders the weak-scaling curve (paper Figure 9, 40962 cells per
// process).
func Figure9() *results.Table {
	t := results.NewTable("Figure 9: weak scaling, 40962 cells/process",
		"Procs", "CPU(s/step)", "Hybrid(s/step)")
	for _, pt := range mpisim.WeakScaling(40962, []int{1, 4, 16, 64}) {
		t.AddRow(pt.Procs, pt.CPUTime, pt.HybridTime)
	}
	return t
}

// MeasuredStep times one real RK-4 step (averaged over n steps) of the given
// model with Go wall clock — the "real measured" companion of the modeled
// figures.
func MeasuredStep(m *Model, n int) time.Duration {
	if n < 1 {
		n = 1
	}
	start := time.Now()
	m.Run(n)
	return time.Since(start) / time.Duration(n)
}

// DistributedRun executes a real multi-rank run (goroutine ranks, real halo
// exchanges) and returns the max per-rank wall time per step plus the
// modeled platform time for the same decomposition.
func DistributedRun(m *mesh.Mesh, ranks, steps int, tc TestCase) (wall time.Duration, err error) {
	d, err := mpisim.Decompose(m, ranks)
	if err != nil {
		return 0, err
	}
	cfg := sw.DefaultConfig(m)
	setup := map[TestCase]func(*sw.Solver){TC2: testcases.SetupTC2, TC5: testcases.SetupTC5, TC6: testcases.SetupTC6}[tc]
	if setup == nil {
		return 0, fmt.Errorf("mpas: unknown test case %d", tc)
	}
	w := mpisim.NewWorld(ranks)
	start := time.Now()
	var firstErr error
	w.Run(func(c *mpisim.Comm) {
		rs, err := mpisim.NewRankSolver(c, d, cfg, setup)
		if err != nil {
			firstErr = err
			return
		}
		rs.Run(steps)
	})
	if firstErr != nil {
		return 0, firstErr
	}
	return time.Since(start) / time.Duration(steps), nil
}
