// Command conformance runs the differential-conformance matrix: every
// execution strategy (serial/threaded branch-free gather, branchy gather,
// scatter reference, hybrid executor at several migration fractions,
// simulated-MPI multi-rank) integrates the same cases — the named
// Williamson/Galewsky ones plus seeded random cases — and the final
// trajectories are compared against the serial baseline under each pair's
// documented tolerance (bitwise for arithmetic-identical strategies, the
// roundoff-reordering band for the scatter form).
//
// The run finishes with a negative self-check: a deliberately perturbed
// kernel must be DETECTED, proving the comparator has teeth. Exit status is
// non-zero on any divergence (or on a perturbation that slips through).
//
// Usage:
//
//	conformance                          # level-2 mesh, all cases, 20 random seeds
//	conformance -level 3 -steps 4        # bigger mesh, longer trajectories
//	conformance -cases tc2,tc5 -random 0 # named cases only
//	conformance -strategies gather-branchy,mpisim-r2
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/conform"
	"repro/internal/mesh"
	"repro/internal/results"
)

func main() {
	level := flag.Int("level", 2, "mesh subdivision level for the named cases")
	steps := flag.Int("steps", 2, "RK-4 steps per case")
	caseList := flag.String("cases", strings.Join(conform.NamedCaseNames(), ","),
		"comma-separated named cases (empty for none)")
	nrandom := flag.Int("random", 20, "number of seeded random cases")
	seed := flag.Uint64("seed", 1, "base seed for the random cases")
	randLevel := flag.Int("randlevel", 2, "mesh subdivision level for random cases")
	strategyList := flag.String("strategies", "", "comma-separated strategy subset (default: all)")
	noSelfCheck := flag.Bool("noselfcheck", false, "skip the perturbation-detection negative test")
	csv := flag.String("csv", "", "write the result matrix as CSV")
	flag.Parse()

	start := time.Now()
	strategies := conform.AllStrategies()
	if *strategyList != "" {
		var picked []conform.Strategy
		for _, name := range strings.Split(*strategyList, ",") {
			s, ok := conform.StrategyByName(strings.TrimSpace(name))
			if !ok {
				log.Fatalf("unknown strategy %q", name)
			}
			picked = append(picked, s)
		}
		strategies = picked
	}
	base := conform.Baseline()

	var cases []*conform.Case
	if *caseList != "" {
		m, err := mesh.Build(*level, mesh.Options{})
		if err != nil {
			log.Fatal(err)
		}
		for _, name := range strings.Split(*caseList, ",") {
			c, err := conform.NamedCase(strings.TrimSpace(name), m, *steps)
			if err != nil {
				log.Fatal(err)
			}
			cases = append(cases, c)
		}
	}
	cases = append(cases, conform.RandomCases(*seed, *nrandom, *randLevel, *steps)...)

	tab := results.NewTable("conformance matrix",
		"case", "strategy", "tolerance", "max_ulp", "rel_l2", "rel_linf", "status")
	failures := 0
	for _, c := range cases {
		ref, err := base.Run(c, true)
		if err != nil {
			log.Fatalf("%s: baseline: %v", c.Name, err)
		}
		for _, s := range strategies {
			if s.Name == base.Name {
				continue
			}
			res, err := s.Run(c, true)
			if err != nil {
				log.Fatalf("%s/%s: %v", c.Name, s.Name, err)
			}
			tol := conform.PairTolerance(base, s, c.Steps)
			tolName := "reorder"
			if tol.RelLInf == 0 {
				tolName = "exact"
			}
			d, ok := conform.CompareResults(ref, res, tol)
			status := "PASS"
			if !ok {
				status = "FAIL"
				failures++
				fmt.Fprintf(os.Stderr, "FAIL %s/%s: %v\n", c.Name, s.Name, d)
			}
			ulp := fmt.Sprintf("%d", d.MaxULP)
			if d.MaxULP > 1<<53 {
				ulp = "huge" // spans zero or mismatched magnitudes; rel norms tell the story
			}
			tab.AddRow(c.Name, s.Name, tolName, ulp,
				fmt.Sprintf("%.2e", d.RelL2), fmt.Sprintf("%.2e", d.RelLInf), status)
		}
	}
	tab.WriteText(os.Stdout)

	if !*noSelfCheck {
		fmt.Println("\nnegative self-check (a corrupted kernel must be detected):")
		m, err := mesh.Build(*randLevel, mesh.Options{})
		if err != nil {
			log.Fatal(err)
		}
		c, err := conform.NamedCase("tc2", m, *steps)
		if err != nil {
			log.Fatal(err)
		}
		ref, err := base.Run(c, true)
		if err != nil {
			log.Fatal(err)
		}
		for _, id := range []string{"A1", "X2", "D1", "E"} {
			res, err := conform.PerturbedStrategy(id, 0).Run(c, true)
			if err != nil {
				log.Fatal(err)
			}
			d, ok := conform.CompareResults(ref, res, conform.ReorderTol(c.Steps))
			if ok {
				failures++
				fmt.Printf("  pattern %s: NOT DETECTED — comparator is blind\n", id)
			} else {
				fmt.Printf("  pattern %s: detected at step %d stage %d (%s[%d])\n",
					id, d.Step, d.Stage, d.Var, d.Index)
			}
		}
	}

	if *csv != "" {
		f, err := os.Create(*csv)
		if err != nil {
			log.Fatal(err)
		}
		if err := tab.WriteCSV(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}

	n := len(cases)
	fmt.Printf("\n%d cases x %d strategies in %v\n", n, len(strategies), time.Since(start).Round(time.Millisecond))
	if failures > 0 {
		fmt.Printf("FAIL: %d divergences\n", failures)
		os.Exit(1)
	}
	fmt.Println("PASS: all strategies agree within documented tolerances")
}
