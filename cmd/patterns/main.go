// Command patterns inspects the paper's pattern decomposition: it prints the
// Table I inventory, the data-flow diagram (Figure 4) as Graphviz DOT, the
// concurrency levels and the critical path.
//
// Usage:
//
//	patterns            # Table I
//	patterns -dot       # Figure 4 as DOT on stdout
//	patterns -levels    # concurrency sets per data-flow level
//	patterns -critical  # critical path under the Phi cost model
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	mpas "repro"
	"repro/internal/dataflow"
	"repro/internal/perfmodel"
)

func main() {
	dot := flag.Bool("dot", false, "emit the data-flow diagram as Graphviz DOT")
	levels := flag.Bool("levels", false, "print concurrency levels")
	critical := flag.Bool("critical", false, "print the critical path under the device cost model")
	optional := flag.Bool("optional", false, "include optional (high-order) patterns")
	cells := flag.Int("cells", 655362, "mesh size for cost-weighted analyses")
	flag.Parse()

	g := dataflow.BuildModel(*optional)

	switch {
	case *dot:
		fmt.Print(g.DOT())
	case *levels:
		for li, lv := range g.Levels() {
			ids := make([]string, len(lv))
			for i, n := range lv {
				ids[i] = g.Nodes[n].ID
			}
			fmt.Printf("level %2d: %s\n", li, strings.Join(ids, " "))
		}
	case *critical:
		mc := perfmodel.CountsForCells(*cells)
		dev := perfmodel.XeonPhi5110P()
		weight := func(i int) float64 {
			spec, ok := perfmodel.WorkTable[g.Nodes[i].ID]
			if !ok {
				return 0
			}
			return dev.PatternTime(mc.Elements(spec.Per), spec.Flops, spec.Bytes, false, perfmodel.AllOpt)
		}
		path, cost := g.CriticalPath(weight)
		fmt.Printf("critical path (%d cells, Xeon Phi, %.3f ms):\n", *cells, cost*1000)
		for _, n := range path {
			fmt.Printf("  %-3s (%s)\n", g.Nodes[n].ID, g.Nodes[n].Kernel)
		}
	default:
		mpas.Table1().WriteText(os.Stdout)
		fmt.Printf("\n%d pattern instances, %d dependency edges, %d concurrency levels\n",
			len(g.Nodes), len(g.Edges), len(g.Levels()))
	}
}
