// Command validate reproduces the paper's Figure 5 correctness experiment:
// Williamson test case 5 (zonal flow over an isolated mountain) integrated
// with the original serial code and with the pattern-driven hybrid
// implementation, comparing the total height fields h+b.
//
// The paper uses the 120-km mesh (level 6, 40962 cells) at day 15; defaults
// here are scaled down for a laptop run — raise -level and -days to paper
// scale.
//
// Usage:
//
//	validate -level 4 -days 2
//	validate -level 6 -days 15 -csv fig5.csv   # paper configuration
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	mpas "repro"
	"repro/internal/mesh"
	"repro/internal/raster"
	"repro/internal/results"
)

func main() {
	level := flag.Int("level", 4, "mesh subdivision level (paper: 6)")
	days := flag.Float64("days", 2, "simulated days (paper: 15)")
	csv := flag.String("csv", "", "write the two height fields + difference as CSV")
	noMap := flag.Bool("nomap", false, "suppress the ASCII map of the height field")
	pgm := flag.String("pgm", "", "write the hybrid total-height field as a PGM image")
	flag.Parse()

	start := time.Now()
	res, err := mpas.Figure5(*level, *days)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Figure 5: TC5 total height at day %.1f, level %d\n", *days, *level)
	fmt.Printf("  field range: up to %.1f m\n", res.FieldScale)
	fmt.Printf("  serial vs hybrid difference: max %.3e m (relative %.3e)\n",
		res.MaxAbsDiff, res.MaxAbsDiff/res.FieldScale)
	fmt.Printf("  norms: l1=%.3e l2=%.3e linf=%.3e\n", res.Norms.L1, res.Norms.L2, res.Norms.LInf)
	if res.MaxAbsDiff/res.FieldScale < 1e-11 {
		fmt.Println("  PASS: results agree within machine precision (paper Fig. 5c)")
	} else {
		fmt.Println("  FAIL: difference exceeds machine precision band")
		os.Exit(1)
	}
	fmt.Printf("  wall time %v\n", time.Since(start))

	if !*noMap || *pgm != "" {
		m, err := mesh.Build(*level, mesh.Options{LloydIterations: 2})
		if err != nil {
			log.Fatal(err)
		}
		if !*noMap {
			g := raster.FromCellField(m, res.HybridHeight, 24, 72)
			g.FillEmpty()
			fmt.Printf("\ntotal height h+b at day %.1f %s\n%s", *days, g.Legend("m"), g.ASCII())
		}
		if *pgm != "" {
			g := raster.FromCellField(m, res.HybridHeight, 180, 360)
			g.FillEmpty()
			if err := g.SavePGM(*pgm); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  wrote %s (360x180 PGM)\n", *pgm)
		}
	}

	if *csv != "" {
		t := results.NewTable("", "lat", "lon", "serial_h", "hybrid_h", "diff")
		for c := range res.SerialHeight {
			t.AddRow(res.LatCell[c], res.LonCell[c], res.SerialHeight[c],
				res.HybridHeight[c], res.HybridHeight[c]-res.SerialHeight[c])
		}
		f, err := os.Create(*csv)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := t.WriteCSV(f); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  wrote %s\n", *csv)
	}
}
