// bigmesh climbs the Table-III mesh ladder (icosahedral levels n=6..9,
// 40962 → 2621442 cells), measuring real seconds/step for the serial,
// compiled-plan, and float32 fast-mode executions, and checks that step
// time scales no worse than ~linearly in cell count. With -out, the report
// is merged under the "ladder" key of the benchmark JSON (see
// scripts/bench.sh).
//
//	go run ./cmd/bigmesh -min-level 6 -max-level 9 -steps 3 -out BENCH_pr7.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/ladder"
)

func main() {
	minLevel := flag.Int("min-level", 6, "first icosahedral subdivision level")
	maxLevel := flag.Int("max-level", 7, "last icosahedral subdivision level (9 = 2621442 cells)")
	steps := flag.Int("steps", 2, "timed steps per mode per level (after one warm-up)")
	workers := flag.Int("workers", 0, "pool size for plan/fast32 (0 = GOMAXPROCS)")
	lloyd := flag.Int("lloyd", 0, "Lloyd relaxation sweeps per mesh build")
	reorder := flag.Bool("reorder", false, "also measure plan/fast32 on the SFC locality-renumbered mesh")
	slack := flag.Float64("slack", 1.8, "max allowed per-cell step-time growth per rung")
	out := flag.String("out", "", "merge the report under \"ladder\" in this JSON file")
	check := flag.Bool("check", true, "fail unless step time scales ~linearly in cells")
	flag.Parse()

	cfg := ladder.Config{
		MinLevel: *minLevel, MaxLevel: *maxLevel,
		Steps: *steps, Workers: *workers, Lloyd: *lloyd,
		Reorder: *reorder,
	}
	rep, err := ladder.Run(cfg, func(format string, args ...any) {
		fmt.Printf(format+"\n", args...)
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "bigmesh:", err)
		os.Exit(1)
	}

	fmt.Printf("\n%-5s %9s %9s %10s %10s %10s %9s %9s\n",
		"level", "cells", "build_s", "serial_s", "plan_s", "fast32_s", "GB/step", "plan_x")
	for _, lv := range rep.Levels {
		fmt.Printf("%-5d %9d %9.1f %10.4f %10.4f %10.4f %9.3f %9.2f\n",
			lv.Level, lv.Cells, lv.BuildSeconds,
			lv.SerialStep, lv.PlanStep, lv.Fast32Step,
			lv.ModeledBytes/1e9, lv.SerialStep/lv.PlanStep)
	}
	if *reorder {
		fmt.Printf("\n%-5s %12s %14s %12s %12s %12s\n",
			"level", "plan_ns/cell", "reorder_ns/cell", "fast32_x", "nbr_before", "nbr_after")
		for _, lv := range rep.Levels {
			fmt.Printf("%-5d %12.2f %14.2f %12.2f %12.0f %12.0f\n",
				lv.Level,
				lv.PlanStep*1e9/float64(lv.Cells),
				lv.PlanStepReorder*1e9/float64(lv.Cells),
				lv.Fast32Step/lv.Fast32StepReorder,
				lv.NeighborDistBefore, lv.NeighborDistAfter)
		}
	}

	if *out != "" {
		if err := ladder.MergeJSON(*out, "ladder", rep); err != nil {
			fmt.Fprintln(os.Stderr, "bigmesh:", err)
			os.Exit(1)
		}
		fmt.Printf("\nmerged ladder report into %s\n", *out)
	}
	if *check {
		if err := ladder.CheckLinear(rep.Levels, *slack); err != nil {
			fmt.Fprintln(os.Stderr, "bigmesh: FAIL:", err)
			os.Exit(1)
		}
		fmt.Printf("scaling check OK: per-cell step time within %.2fx per rung\n", *slack)
	}
}
