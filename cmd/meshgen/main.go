// Command meshgen builds quasi-uniform SCVT meshes, prints their statistics
// and reproduces Table III of the paper.
//
// Usage:
//
//	meshgen -level 5 -lloyd 2      # build one mesh and validate it
//	meshgen -table3 -maxbuild 6    # Table III, building levels <= 6
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	mpas "repro"
	"repro/internal/mesh"
)

func main() {
	level := flag.Int("level", 4, "icosahedral subdivision level")
	lloyd := flag.Int("lloyd", 2, "Lloyd relaxation sweeps")
	table3 := flag.Bool("table3", false, "print Table III instead of building one mesh")
	maxBuild := flag.Int("maxbuild", 5, "with -table3: build meshes up to this level for measured stats")
	validate := flag.Bool("validate", true, "run the full mesh invariant validation")
	save := flag.String("save", "", "write the built mesh to this file")
	load := flag.String("load", "", "load a mesh from this file instead of building")
	flag.Parse()

	if *table3 {
		mpas.Table3(*maxBuild).WriteText(os.Stdout)
		return
	}

	start := time.Now()
	var m *mesh.Mesh
	var err error
	if *load != "" {
		m, err = mesh.LoadFile(*load)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("loaded %s in %v\n", m, time.Since(start))
	} else {
		m, err = mesh.Build(*level, mesh.Options{LloydIterations: *lloyd})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("built %s in %v\n", m, time.Since(start))
	}
	if *save != "" {
		if err := m.SaveFile(*save); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("saved to %s\n", *save)
	}

	s := m.ComputeStats()
	fmt.Printf("resolution: %.1f km mean cell spacing (min %.1f, max %.1f)\n",
		s.ResolutionKm, s.MinDc/1000, s.MaxDc/1000)
	fmt.Printf("cell areas: %.3e .. %.3e m^2\n", s.MinArea, s.MaxArea)
	pent := 0
	for c := 0; c < m.NCells; c++ {
		if m.NEdgesOnCell[c] == 5 {
			pent++
		}
	}
	fmt.Printf("cells: %d hexagons, %d pentagons\n", m.NCells-pent, pent)

	q := m.ComputeQuality()
	fmt.Printf("quality: orthogonality max %.4f rad (mean %.5f), off-centering %.3f, area ratio %.2f, centroid drift %.3f\n",
		q.MaxOrthogonality, q.MeanOrthogonality, q.MaxOffCentering, q.AreaRatio, q.MaxCentroidDrift)

	if *validate {
		start = time.Now()
		if err := m.Validate(); err != nil {
			log.Fatalf("mesh INVALID: %v", err)
		}
		fmt.Printf("all mesh invariants hold (checked in %v)\n", time.Since(start))
	}
}
