// swrank is the distributed shallow-water rank binary: one OS process per
// rank, exchanging multi-layer halos over the internal/dist TCP runtime.
// It is the process-level counterpart of the goroutine-based mpisim world
// and the executable behind the repository's real strong-scaling numbers.
//
// Modes:
//
//	swrank -launch 4 -case tc5 -level 5 -steps 10        # spawn+supervise 4 local ranks
//	swrank -rank 1 -ranks 4 -addr0 127.0.0.1:7000 ...    # one rank (launcher does this)
//	swrank -serial -case tc5 -level 5 -steps 10 -hash    # single-process reference
//
// Rank 0 computes the partition, distributes the owner map during the TCP
// rendezvous, and gathers the final fields. -overlap (default) steps
// through the comm/compute-overlapped compiled plan; -overlap=false steps
// the same compiled kernels with a blocking exchange at each RK substep
// boundary, so the pair isolates the scheduling difference. -hash prints a
// 64-bit FNV-1a of the final global state: the distributed hash must equal
// the -serial hash bit for bit (scripts/ci.sh checks exactly that).
package main

import (
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"runtime"
	"syscall"
	"time"

	"repro/internal/conform"
	"repro/internal/dist"
	"repro/internal/mesh"
	"repro/internal/par"
	"repro/internal/partition"
	"repro/internal/sw"
	"repro/internal/telemetry"
)

type options struct {
	launch    int
	rank      int
	ranks     int
	addr0     string
	listen    string
	serial    bool
	caseN     string
	level     int
	steps     int
	overlap   bool
	taskplan  bool
	reorder   bool
	workers   int
	hash      bool
	out       string
	benchOut  string
	benchKey  string
	timeout   time.Duration
	crashRank int
	crashStep int
}

func main() {
	var o options
	flag.IntVar(&o.launch, "launch", 0, "spawn and supervise N local ranks of this binary")
	flag.IntVar(&o.rank, "rank", -1, "this process's rank (launcher sets this)")
	flag.IntVar(&o.ranks, "ranks", 0, "total rank count (launcher sets this)")
	flag.StringVar(&o.addr0, "addr0", "", "rank 0 listen address / address to dial (host:port)")
	flag.StringVar(&o.listen, "listen", "127.0.0.1:0", "peer-listener bind address on ranks > 0")
	flag.BoolVar(&o.serial, "serial", false, "single-process reference run (no networking)")
	flag.StringVar(&o.caseN, "case", "tc5", "test case: tc1, tc2, tc5, tc6, galewsky")
	flag.IntVar(&o.level, "level", 5, "icosahedral mesh subdivision level")
	flag.IntVar(&o.steps, "steps", 10, "RK-4 steps")
	flag.BoolVar(&o.overlap, "overlap", true, "overlap halo exchange with interior compute")
	flag.BoolVar(&o.taskplan, "taskplan", false, "execute the compiled plan as a dependency-counted task graph (no level barriers)")
	flag.BoolVar(&o.reorder, "reorder", false, "locality renumbering: run on the SFC-reordered mesh (SFC partition; output stays canonical)")
	flag.IntVar(&o.workers, "workers", 0, "worker threads per rank (0 = NumCPU/ranks, min 1)")
	flag.BoolVar(&o.hash, "hash", false, "print FNV-1a 64 hash of the final global state")
	flag.StringVar(&o.out, "out", "", "rank 0: write the final state + mass series here")
	flag.StringVar(&o.benchOut, "bench-out", "", "rank 0: merge a timing entry into this JSON file")
	flag.StringVar(&o.benchKey, "bench-key", "dist_strong_scaling", "JSON key for the timing entries")
	flag.DurationVar(&o.timeout, "timeout", 2*time.Minute, "bound on every network operation and on the whole launch")
	flag.IntVar(&o.crashRank, "crash-rank", -1, "fault injection: this rank kills itself (SIGKILL)")
	flag.IntVar(&o.crashStep, "crash-step", 0, "fault injection: ...at the start of this step")
	flag.Parse()

	var err error
	switch {
	case o.launch > 0:
		err = runLauncher(&o)
	case o.serial:
		err = runSerial(&o)
	case o.rank >= 0:
		err = runRank(&o)
	default:
		err = fmt.Errorf("one of -launch, -serial or -rank is required")
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "swrank:", err)
		os.Exit(1)
	}
}

func runLauncher(o *options) error {
	bin, err := os.Executable()
	if err != nil {
		return err
	}
	args := []string{
		"-case", o.caseN,
		"-level", fmt.Sprint(o.level),
		"-steps", fmt.Sprint(o.steps),
		"-overlap=" + fmt.Sprint(o.overlap),
		"-taskplan=" + fmt.Sprint(o.taskplan),
		"-reorder=" + fmt.Sprint(o.reorder),
		"-workers", fmt.Sprint(o.workers),
		"-timeout", o.timeout.String(),
		"-crash-rank", fmt.Sprint(o.crashRank),
		"-crash-step", fmt.Sprint(o.crashStep),
	}
	if o.hash {
		args = append(args, "-hash")
	}
	if o.out != "" {
		args = append(args, "-out", o.out)
	}
	if o.benchOut != "" {
		args = append(args, "-bench-out", o.benchOut, "-bench-key", o.benchKey)
	}
	return dist.Launch(bin, o.launch, args, o.timeout, os.Stdout, os.Stderr)
}

// buildCase constructs the canonical mesh and named case; every process of
// a run (and the serial reference it is compared against) goes through this
// same path, which is what makes independent per-process mesh construction
// sound. With -reorder the case's configuration is still derived from the
// CANONICAL mesh (inside NamedCase) and only then is the mesh swapped for
// its SFC-renumbered copy — the returned maps carry results back to
// canonical numbering so hashes and result files stay comparable bit for
// bit across the flag. The renumbering is deterministic, so every rank
// computes the same maps independently.
func buildCase(o *options) (*conform.Case, *mesh.Reorder, error) {
	m, err := dist.DefaultMesh(o.level)
	if err != nil {
		return nil, nil, err
	}
	c, err := conform.NamedCase(o.caseN, m, o.steps)
	if err != nil {
		return nil, nil, err
	}
	if !o.reorder {
		return c, nil, nil
	}
	ren := mesh.ComputeReorder(c.Mesh)
	rm, err := ren.Apply(c.Mesh)
	if err != nil {
		return nil, nil, err
	}
	c.Mesh = rm
	return c, ren, nil
}

// canonicalState maps a final (h, u) pair back to canonical numbering when
// the run was renumbered; with ren == nil it is the identity.
func canonicalState(ren *mesh.Reorder, h, u []float64) ([]float64, []float64) {
	if ren == nil {
		return h, u
	}
	ch := make([]float64, len(h))
	cu := make([]float64, len(u))
	ren.CellToCanonical(ch, h)
	ren.EdgeToCanonical(cu, u)
	return ch, cu
}

func runSerial(o *options) error {
	c, ren, err := buildCase(o)
	if err != nil {
		return err
	}
	s, err := sw.NewSolver(c.Mesh, c.Cfg)
	if err != nil {
		return err
	}
	workers := o.workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	pool := par.NewPool(workers)
	defer pool.Close()
	newRunner := sw.NewPlanRunner
	if o.taskplan {
		newRunner = sw.NewTaskPlanRunner
	}
	r, err := newRunner(s, pool)
	if err != nil {
		return err
	}
	s.Runner = r
	c.Setup(s)

	mass := []float64{s.ComputeInvariants().Mass}
	t0 := time.Now()
	for i := 0; i < o.steps; i++ {
		s.Step()
		if o.out != "" {
			mass = append(mass, s.ComputeInvariants().Mass)
		}
	}
	elapsed := time.Since(t0)
	perStep := elapsed.Seconds() / float64(o.steps)
	fmt.Printf("swrank serial: case=%s level=%d cells=%d steps=%d %.4fs/step\n",
		o.caseN, o.level, c.Mesh.NCells, o.steps, perStep)
	h, u := canonicalState(ren, s.State.H, s.State.U)
	if o.hash {
		fmt.Printf("swrank hash %016x\n", stateHash(h, u))
	}
	if o.out != "" {
		if err := dist.WriteResult(o.out, &dist.RunResult{
			Level: o.level, Steps: o.steps, H: h, U: u, Mass: mass}); err != nil {
			return err
		}
	}
	if o.benchOut != "" {
		return mergeBench(o.benchOut, o.benchKey, benchEntry{
			Mode: "serial", Procs: 1, Workers: workers, Level: o.level,
			Cells: c.Mesh.NCells, Steps: o.steps, Reorder: o.reorder,
			TaskPlan:       o.taskplan,
			SecondsPerStep: perStep,
		})
	}
	return nil
}

func runRank(o *options) error {
	if o.ranks < 1 || o.rank >= o.ranks {
		return fmt.Errorf("invalid -rank %d -ranks %d", o.rank, o.ranks)
	}
	if o.addr0 == "" {
		return fmt.Errorf("-addr0 is required in rank mode")
	}
	// Watchdog: whatever happens, a rank never outlives its timeout by more
	// than a grace period — the launcher's no-hang guarantee does not depend
	// on the comm layer's deadlines being reached.
	watchdog := time.AfterFunc(o.timeout+30*time.Second, func() {
		fmt.Fprintf(os.Stderr, "swrank: rank %d: watchdog expired\n", o.rank)
		os.Exit(2)
	})
	defer watchdog.Stop()

	c, ren, err := buildCase(o)
	if err != nil {
		return err
	}
	var owner []int32
	if o.rank == 0 {
		// On the renumbered mesh the SFC partition's parts are contiguous
		// index ranges — the locality blocks the kernels walk are exactly
		// the ownership blocks the exchange ships.
		var p *partition.Partition
		if o.reorder {
			p, err = partition.SFC(c.Mesh, o.ranks)
		} else {
			p, err = partition.Bisect(c.Mesh, o.ranks)
		}
		if err != nil {
			return err
		}
		owner = p.Owner
	}
	cfg := dist.Config{
		Rank: o.rank, N: o.ranks, Addr0: o.addr0,
		ListenAddr: o.listen, Timeout: o.timeout,
	}
	if o.rank == 0 {
		cfg.Announce = os.Stdout
	}
	b, err := dist.Connect(cfg, owner)
	if err != nil {
		return err
	}
	defer b.Comm.Close()
	reg := telemetry.NewRegistry()
	b.Comm.EnableTelemetry(reg)

	workers := o.workers
	if workers <= 0 {
		workers = runtime.NumCPU() / o.ranks
		if workers < 1 {
			workers = 1
		}
	}
	pool := par.NewPool(workers)
	defer pool.Close()

	rs, err := dist.NewRankSolverOpts(b, c.Mesh, c.Cfg, c.Setup, pool,
		dist.RankOptions{Overlap: o.overlap, TaskPlan: o.taskplan})
	if err != nil {
		return err
	}
	rs.Ex.EnableTelemetry(reg)

	recordMass := o.out != "" && o.rank == 0
	var mass []float64
	stepMass := func() error {
		gm, err := rs.GlobalMass()
		if err != nil {
			return err
		}
		if o.rank == 0 {
			mass = append(mass, gm)
		}
		return nil
	}
	if o.out != "" {
		if err := stepMass(); err != nil {
			return err
		}
	}

	if err := b.Comm.Barrier(); err != nil {
		return err
	}
	t0 := time.Now()
	for i := 0; i < o.steps; i++ {
		if o.rank == o.crashRank && i == o.crashStep {
			// Fault injection: die the way a crashed node dies — no
			// goodbye frames, no flushes.
			syscall.Kill(os.Getpid(), syscall.SIGKILL)
		}
		if err := rs.Step(); err != nil {
			return err
		}
		if o.out != "" {
			if err := stepMass(); err != nil {
				return err
			}
		}
	}
	if err := b.Comm.Barrier(); err != nil {
		return err
	}
	elapsed := time.Since(t0).Seconds()
	maxElapsed, err := b.Comm.AllreduceMax(elapsed)
	if err != nil {
		return err
	}
	perStep := maxElapsed / float64(o.steps)

	h, err := rs.GatherCellField(rs.S.State.H)
	if err != nil {
		return err
	}
	u, err := rs.GatherEdgeField(rs.S.State.U)
	if err != nil {
		return err
	}

	fmt.Printf("swrank rank %d: steps=%d %.4fs/step sent=%dB recv=%dB wait=%.3fs overlap-eff=%.2f\n",
		o.rank, o.steps, perStep, b.Comm.BytesSent.Value(), b.Comm.BytesRecv.Value(),
		b.Comm.WaitTimer.Total().Seconds(), rs.Ex.OverlapEfficiency())

	if o.rank != 0 {
		return nil
	}
	h, u = canonicalState(ren, h, u)
	if o.hash {
		fmt.Printf("swrank hash %016x\n", stateHash(h, u))
	}
	if recordMass {
		if err := dist.WriteResult(o.out, &dist.RunResult{
			Level: o.level, Steps: o.steps, H: h, U: u, Mass: mass}); err != nil {
			return err
		}
	}
	if o.benchOut != "" {
		return mergeBench(o.benchOut, o.benchKey, benchEntry{
			Mode: "dist", Procs: o.ranks, Workers: workers, Level: o.level,
			Cells: c.Mesh.NCells, Steps: o.steps, Overlap: o.overlap,
			Reorder:          o.reorder,
			TaskPlan:         o.taskplan,
			SecondsPerStep:   perStep,
			Rank0BytesSent:   b.Comm.BytesSent.Value(),
			Rank0WaitSeconds: b.Comm.WaitTimer.Total().Seconds(),
			Rank0OverlapEff:  rs.Ex.OverlapEfficiency(),
		})
	}
	return nil
}

// stateHash is the FNV-1a 64 hash of the little-endian bytes of H then U —
// the cheap bitwise-conformance check scripts/ci.sh compares across process
// counts.
func stateHash(h, u []float64) uint64 {
	hs := fnv.New64a()
	var b [8]byte
	for _, f := range [][]float64{h, u} {
		for _, v := range f {
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
			hs.Write(b[:])
		}
	}
	return hs.Sum64()
}

// benchEntry is one point of the strong-scaling curve recorded into the
// benchmark JSON (appended under -bench-key, newest last).
type benchEntry struct {
	Mode             string  `json:"mode"` // "dist" or "serial"
	Procs            int     `json:"procs"`
	Workers          int     `json:"workers_per_rank"`
	Level            int     `json:"level"`
	Cells            int     `json:"cells"`
	Steps            int     `json:"steps"`
	Overlap          bool    `json:"overlap"`
	Reorder          bool    `json:"reorder,omitempty"`
	TaskPlan         bool    `json:"taskplan,omitempty"`
	SecondsPerStep   float64 `json:"seconds_per_step"`
	Rank0BytesSent   int64   `json:"rank0_bytes_sent,omitempty"`
	Rank0WaitSeconds float64 `json:"rank0_wait_seconds,omitempty"`
	Rank0OverlapEff  float64 `json:"rank0_overlap_efficiency,omitempty"`
}

// mergeBench appends entry to the array under key in the JSON object at
// path, preserving all other keys (the file is shared with scripts/bench.sh
// and the ladder report).
func mergeBench(path, key string, entry benchEntry) error {
	doc := map[string]json.RawMessage{}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &doc); err != nil {
			return fmt.Errorf("%s exists but is not a JSON object: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	var entries []benchEntry
	if raw, ok := doc[key]; ok {
		if err := json.Unmarshal(raw, &entries); err != nil {
			return fmt.Errorf("%s key %q is not an entry array: %w", path, key, err)
		}
	}
	entries = append(entries, entry)
	enc, err := json.MarshalIndent(entries, "  ", "  ")
	if err != nil {
		return err
	}
	doc[key] = enc
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
