package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dist"
)

// binOnce builds the swrank binary once for every integration test here.
var binOnce struct {
	sync.Once
	bin string
	err string
}

func swrank(t *testing.T) string {
	t.Helper()
	binOnce.Do(func() {
		dir, err := os.MkdirTemp("", "swrank-bin-*")
		if err != nil {
			binOnce.err = err.Error()
			return
		}
		bin := filepath.Join(dir, "swrank")
		if out, err := exec.Command("go", "build", "-o", bin, "repro/cmd/swrank").CombinedOutput(); err != nil {
			binOnce.err = fmt.Sprintf("%v\n%s", err, out)
			return
		}
		binOnce.bin = bin
	})
	if binOnce.err != "" {
		t.Fatalf("building swrank: %s", binOnce.err)
	}
	return binOnce.bin
}

var hashRe = regexp.MustCompile(`swrank hash ([0-9a-f]{16})`)

func runHash(t *testing.T, args ...string) string {
	t.Helper()
	out, err := exec.Command(swrank(t), args...).CombinedOutput()
	if err != nil {
		t.Fatalf("swrank %v: %v\n%s", args, err, out)
	}
	m := hashRe.FindSubmatch(out)
	if m == nil {
		t.Fatalf("no hash line in output of swrank %v:\n%s", args, out)
	}
	return string(m[1])
}

// In-process coverage of the serial reference path: result file, mass
// series, and bench entry all produced from one run.
func TestRunSerialWritesResultAndBench(t *testing.T) {
	dir := t.TempDir()
	o := &options{
		serial: true, caseN: "tc2", level: 3, steps: 2, workers: 1,
		hash: true, out: filepath.Join(dir, "res.bin"),
		benchOut: filepath.Join(dir, "bench.json"), benchKey: "k",
		timeout: time.Minute,
	}
	if err := runSerial(o); err != nil {
		t.Fatal(err)
	}
	r, err := dist.ReadResult(o.out)
	if err != nil {
		t.Fatal(err)
	}
	if r.Level != 3 || r.Steps != 2 || len(r.Mass) != 3 || len(r.H) == 0 || len(r.U) == 0 {
		t.Fatalf("result shape wrong: level=%d steps=%d lens=%d/%d/%d",
			r.Level, r.Steps, len(r.H), len(r.U), len(r.Mass))
	}
	raw, err := os.ReadFile(o.benchOut)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string][]benchEntry
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("bench JSON: %v\n%s", err, raw)
	}
	if len(doc["k"]) != 1 || doc["k"][0].Mode != "serial" || doc["k"][0].SecondsPerStep <= 0 {
		t.Fatalf("bench entry wrong:\n%s", raw)
	}
}

func TestRunSerialRejectsUnknownCase(t *testing.T) {
	if err := runSerial(&options{serial: true, caseN: "nope", level: 3, steps: 1}); err == nil {
		t.Fatal("unknown case accepted")
	}
}

func TestStateHash(t *testing.T) {
	h := []float64{1, 2, 3}
	u := []float64{4, 5}
	a := stateHash(h, u)
	if b := stateHash(h, u); b != a {
		t.Fatalf("hash not deterministic: %x vs %x", a, b)
	}
	u[1] = math.Nextafter(5, 6)
	if b := stateHash(h, u); b == a {
		t.Fatal("hash insensitive to a 1-ULP change")
	}
	// The hash is a plain concatenation of H then U — the split point is
	// fixed by the mesh, so it is deliberately NOT encoded.
	if stateHash([]float64{1, 2}, []float64{3}) != stateHash([]float64{1}, []float64{2, 3}) {
		t.Fatal("hash unexpectedly encodes the H/U boundary")
	}
}

func TestMergeBenchRejectsMalformedFiles(t *testing.T) {
	dir := t.TempDir()
	notObj := filepath.Join(dir, "a.json")
	if err := os.WriteFile(notObj, []byte(`[1,2]`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := mergeBench(notObj, "k", benchEntry{}); err == nil {
		t.Fatal("non-object file accepted")
	}
	badKey := filepath.Join(dir, "b.json")
	if err := os.WriteFile(badKey, []byte(`{"k": {"not": "array"}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := mergeBench(badKey, "k", benchEntry{}); err == nil {
		t.Fatal("non-array key accepted")
	}
}

// The core promise of the whole subsystem: N real processes over TCP
// produce the exact bytes of the single-process run — overlapped or
// blocking, any worker count.
func TestLaunchHashMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes")
	}
	common := []string{"-case", "tc2", "-level", "3", "-steps", "2", "-hash", "-timeout", "60s"}
	serial := runHash(t, append([]string{"-serial"}, common...)...)
	for _, args := range [][]string{
		{"-launch", "2"},
		{"-launch", "2", "-overlap=false"},
		{"-launch", "3", "-workers", "2"},
	} {
		got := runHash(t, append(args, common...)...)
		if got != serial {
			t.Errorf("swrank %v hash %s != serial %s", args, got, serial)
		}
	}
}

// A rank killed mid-run must take the launch down: non-zero exit, the
// culprit rank named, every process gone, all well inside the deadline.
func TestCrashedRankIsNamedFast(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes")
	}
	start := time.Now()
	out, err := exec.Command(swrank(t),
		"-launch", "3", "-case", "tc2", "-level", "3", "-steps", "4",
		"-crash-rank", "2", "-crash-step", "1", "-timeout", "60s").CombinedOutput()
	if err == nil {
		t.Fatalf("launch with a killed rank exited zero:\n%s", out)
	}
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() == 0 {
		t.Fatalf("unexpected error kind: %v", err)
	}
	if !strings.Contains(string(out), "rank 2 failed") {
		t.Fatalf("culprit not named in output:\n%s", out)
	}
	if el := time.Since(start); el > 30*time.Second {
		t.Fatalf("failure took %v to surface (deadline was 60s)", el)
	}
}

// -bench-out appends entries while preserving unrelated keys in the shared
// benchmark JSON.
func TestBenchOutMergesEntries(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes")
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, []byte(`{"existing": {"keep": true}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	common := []string{"-case", "tc2", "-level", "3", "-steps", "1",
		"-bench-out", path, "-timeout", "60s"}
	for _, args := range [][]string{
		{"-serial"},
		{"-launch", "2"},
		{"-launch", "2", "-overlap=false"},
	} {
		if out, err := exec.Command(swrank(t), append(args, common...)...).CombinedOutput(); err != nil {
			t.Fatalf("swrank %v: %v\n%s", args, err, out)
		}
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Existing map[string]bool `json:"existing"`
		Entries  []struct {
			Mode           string  `json:"mode"`
			Procs          int     `json:"procs"`
			Overlap        bool    `json:"overlap"`
			SecondsPerStep float64 `json:"seconds_per_step"`
		} `json:"dist_strong_scaling"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("bench JSON: %v\n%s", err, raw)
	}
	if !doc.Existing["keep"] {
		t.Fatal("pre-existing key clobbered")
	}
	if len(doc.Entries) != 3 {
		t.Fatalf("%d entries, want 3:\n%s", len(doc.Entries), raw)
	}
	for i, e := range doc.Entries {
		if e.SecondsPerStep <= 0 {
			t.Errorf("entry %d has non-positive seconds_per_step", i)
		}
	}
	if doc.Entries[0].Mode != "serial" || doc.Entries[1].Mode != "dist" ||
		!doc.Entries[1].Overlap || doc.Entries[2].Overlap {
		t.Fatalf("entry shape wrong:\n%s", raw)
	}
}
