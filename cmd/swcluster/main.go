// Command swcluster runs the cluster coordinator: it shards submitted
// jobs across registered swserver workers by consistent hashing, proxies
// the job API, health-checks the fleet, mirrors worker checkpoints, and
// steals work — checkpoint included — from workers that die.
//
// Usage:
//
//	swcluster -addr :9090 -spool ./cluster-spool
//
//	# workers join themselves:
//	swserver -addr 127.0.0.1:0 -register http://127.0.0.1:9090 -name w1
//
//	# clients talk to the coordinator exactly like a single swserver:
//	curl -s -X POST localhost:9090/jobs -d '{"test_case":5,"level":3,"steps":200,"ensemble":8}'
//	curl -s localhost:9090/jobs                    # job table (+worker, +steals)
//	curl -s localhost:9090/cluster/workers         # fleet health
//	curl -s localhost:9090/metrics                 # federated metrics
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/telemetry"
)

func main() {
	addr := flag.String("addr", ":9090", "listen address (use 127.0.0.1:0 for an ephemeral port)")
	spoolDir := flag.String("spool", "cluster-spool", "spool directory for checkpoint mirrors and assignments")
	heartbeat := flag.Duration("heartbeat", time.Second, "worker probe + mirror cadence")
	evictAfter := flag.Duration("evict-after", 3*time.Second, "silence deadline before a worker is evicted and its jobs stolen")
	flag.Parse()

	c, err := cluster.New(cluster.Config{
		SpoolDir:       *spoolDir,
		HeartbeatEvery: *heartbeat,
		EvictAfter:     *evictAfter,
		Registry:       telemetry.NewRegistry(),
		Logf:           log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	// Parseable discovery line on stdout, like swserver's.
	fmt.Printf("swcluster listening on %s (spool=%s heartbeat=%s evict-after=%s)\n",
		ln.Addr(), *spoolDir, *heartbeat, *evictAfter)

	httpSrv := &http.Server{Handler: c.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		log.Printf("swcluster: %v: shutting down (workers keep running)", sig)
	case err := <-errCh:
		log.Fatalf("swcluster: serve: %v", err)
	}
	c.Close()
}
