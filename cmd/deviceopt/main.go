// Command deviceopt reproduces Figure 6: the cumulative optimization ladder
// on the (simulated) Intel Xeon Phi — serial baseline, naive OpenMP,
// regularity-aware refactoring, manual SIMD, streaming stores, and the
// remaining prefetch/2MB/fusion optimizations.
//
// Usage:
//
//	deviceopt              # 30-km mesh (655362 cells), as in the paper
//	deviceopt -cells 40962
package main

import (
	"flag"
	"os"

	mpas "repro"
)

func main() {
	cells := flag.Int("cells", 655362, "mesh size (paper Figure 6 uses the 30-km mesh)")
	flag.Parse()
	mpas.Figure6(*cells).WriteText(os.Stdout)
}
