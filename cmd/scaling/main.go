// Command scaling reproduces Figures 8 and 9: strong and weak scaling of
// the original code and the pattern-driven hybrid from 1 to 64 MPI
// processes, on the modeled platform (FDR InfiniBand + PCIe staging). With
// -real it additionally runs real goroutine-rank simulations with real halo
// exchanges on a built mesh and reports measured wall time.
//
// Usage:
//
//	scaling -strong 655362      # Figure 8(a), 30-km mesh
//	scaling -strong 2621442     # Figure 8(b), 15-km mesh
//	scaling -weak               # Figure 9
//	scaling -real -level 5 -ranks 8
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	mpas "repro"
	"repro/internal/mesh"
	"repro/internal/results"
)

func main() {
	strong := flag.Int("strong", 0, "total cells for a strong-scaling curve (Figure 8)")
	weak := flag.Bool("weak", false, "weak scaling at 40962 cells/process (Figure 9)")
	real := flag.Bool("real", false, "run real distributed ranks on a built mesh")
	level := flag.Int("level", 5, "mesh level for -real")
	maxRanks := flag.Int("ranks", 8, "max rank count for -real (powers of 2)")
	steps := flag.Int("steps", 2, "steps per real run")
	flag.Parse()

	ran := false
	if *strong > 0 {
		mpas.Figure8(*strong).WriteText(os.Stdout)
		ran = true
	}
	if *weak {
		mpas.Figure9().WriteText(os.Stdout)
		ran = true
	}
	if *real {
		msh, err := mesh.Build(*level, mesh.Options{LloydIterations: 1})
		if err != nil {
			log.Fatal(err)
		}
		t := results.NewTable(
			fmt.Sprintf("Real distributed runs (%d cells, %d steps, goroutine ranks)", msh.NCells, *steps),
			"Ranks", "ms/step (wall)")
		for r := 1; r <= *maxRanks; r *= 2 {
			wall, err := mpas.DistributedRun(msh, r, *steps, mpas.TC5)
			if err != nil {
				log.Fatal(err)
			}
			t.AddRow(r, float64(wall.Microseconds())/1000)
		}
		t.WriteText(os.Stdout)
		ran = true
	}
	if !ran {
		// Default: both paper strong-scaling curves plus weak scaling.
		mpas.Figure8(655362).WriteText(os.Stdout)
		fmt.Println()
		mpas.Figure8(2621442).WriteText(os.Stdout)
		fmt.Println()
		mpas.Figure9().WriteText(os.Stdout)
	}
}
