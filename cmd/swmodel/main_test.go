package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildSwmodel compiles the CLI once per test binary.
func buildSwmodel(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "swmodel")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building swmodel: %v\n%s", err, out)
	}
	return bin
}

func runSwmodel(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("swmodel %s: %v\n%s", strings.Join(args, " "), err, out)
	}
	return string(out)
}

// TestCheckpointResumeRoundTrip is the CLI durability contract: a run
// interrupted at step 6 and resumed to the same total step count must
// produce a final checkpoint byte-identical to an uninterrupted run's —
// -steps/-days are totals from t=0, and the final checkpoint is always
// written.
func TestCheckpointResumeRoundTrip(t *testing.T) {
	bin := buildSwmodel(t)
	dir := t.TempDir()
	ck := filepath.Join(dir, "ck.bin")
	full := filepath.Join(dir, "full.bin")
	resumed := filepath.Join(dir, "resumed.bin")

	base := []string{"-level", "1", "-tc", "5", "-mode", "serial", "-report", "4"}

	// Interrupted run: 6 steps, checkpoint left behind.
	runSwmodel(t, bin, append(base, "-steps", "6", "-checkpoint", ck)...)
	// Uninterrupted run to 12.
	runSwmodel(t, bin, append(base, "-steps", "12", "-checkpoint", full)...)
	// Resume the interrupted run to the same total.
	out := runSwmodel(t, bin, append(base, "-steps", "12", "-resume", ck, "-checkpoint", resumed)...)
	if !strings.Contains(out, "resumed from "+ck+" at step 6") {
		t.Fatalf("resume banner missing:\n%s", out)
	}

	a, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("resumed checkpoint differs from uninterrupted run (%d vs %d bytes)", len(b), len(a))
	}
}

// TestCheckpointCadence: -checkpoint-every writes periodic checkpoints (the
// file exists mid-run semantics are covered by the serve tests; here we
// check the flag plumbs through and the final file loads).
func TestCheckpointCadence(t *testing.T) {
	bin := buildSwmodel(t)
	ck := filepath.Join(t.TempDir(), "ck.bin")
	out := runSwmodel(t, bin, "-level", "1", "-tc", "2", "-mode", "serial",
		"-steps", "5", "-report", "2", "-checkpoint", ck, "-checkpoint-every", "2")
	if !strings.Contains(out, "wrote checkpoint "+ck+" (step 5)") {
		t.Fatalf("final checkpoint banner missing:\n%s", out)
	}
	if fi, err := os.Stat(ck); err != nil || fi.Size() == 0 {
		t.Fatalf("checkpoint file missing or empty: %v", err)
	}
}
