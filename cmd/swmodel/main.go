// Command swmodel runs the MPAS shallow-water model: pick a Williamson test
// case, a mesh resolution and an execution design, and integrate forward
// while reporting conservation diagnostics.
//
// Usage:
//
//	swmodel -level 5 -tc 5 -days 1 -mode pattern -report 50
//	swmodel -trace trace.json -metrics metrics.prom   # observability artifacts
//	swmodel -info          # print the simulated platform (Table II)
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	mpas "repro"
	"repro/internal/sw"
	"repro/internal/telemetry"
	"repro/internal/testcases"
)

func main() {
	level := flag.Int("level", 4, "icosahedral subdivision level (cells = 10*4^n+2)")
	tc := flag.Int("tc", 5, "test case: 1 (advection), 2, 5, 6 (Williamson), 8 (Galewsky jet)")
	days := flag.Float64("days", 1, "total simulated days (from t=0, so a resumed run covers the remainder)")
	stepsFlag := flag.Int("steps", 0, "total RK-4 steps (overrides -days when positive)")
	mode := flag.String("mode", "pattern", "execution design: serial|threaded|kernel|pattern|plan|taskplan")
	workers := flag.Int("workers", 0, "host worker count (0 = GOMAXPROCS)")
	devWorkers := flag.Int("dev-workers", 0, "device worker count (0 = GOMAXPROCS)")
	report := flag.Int("report", 100, "report invariants every N steps")
	highOrder := flag.Bool("high-order", false, "enable C1+D2 high-order thickness interpolation")
	precision := flag.String("precision", "float64", "step arithmetic: float64 (reference) or float32 (fast mode; serial/threaded/plan/taskplan only)")
	reorder := flag.Bool("reorder", false, "locality renumbering: run on the SFC-reordered mesh (checkpoints stay canonical)")
	info := flag.Bool("info", false, "print platform and pattern info and exit")
	profile := flag.Bool("profile", false, "profile real per-pattern wall time and print the report")
	history := flag.String("history", "", "write an invariant time series CSV to this file")
	traceOut := flag.String("trace", "", "write a Chrome trace_event JSON (chrome://tracing, Perfetto) to this file")
	metricsOut := flag.String("metrics", "", "write Prometheus text-format metrics to this file")
	checkpoint := flag.String("checkpoint", "", "write solver checkpoints to this file (every -checkpoint-every steps and at the end)")
	ckptEvery := flag.Int("checkpoint-every", 0, "checkpoint cadence in steps (0 = only at the end)")
	resume := flag.String("resume", "", "resume from a checkpoint file written by -checkpoint")
	flag.Parse()

	if *info {
		mpas.Table2().WriteText(os.Stdout)
		fmt.Println()
		mpas.Table1().WriteText(os.Stdout)
		return
	}

	modes := map[string]mpas.Mode{
		"serial": mpas.Serial, "threaded": mpas.Threaded,
		"kernel": mpas.KernelLevel, "pattern": mpas.PatternDriven,
		"plan": mpas.Plan, "taskplan": mpas.TaskPlan,
	}
	md, ok := modes[*mode]
	if !ok {
		log.Fatalf("unknown mode %q", *mode)
	}

	model, err := mpas.New(mpas.Options{
		Level:              *level,
		TestCase:           mpas.TestCase(*tc),
		Mode:               md,
		Workers:            *workers,
		DeviceWorkers:      *devWorkers,
		AdjustableFraction: -1,
		HighOrderThickness: *highOrder,
		Precision:          *precision,
		Reorder:            *reorder,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer model.Close()

	var tracer *telemetry.Tracer
	var registry *telemetry.Registry
	if *traceOut != "" {
		tracer = telemetry.NewTracer()
	}
	if *metricsOut != "" {
		registry = telemetry.NewRegistry()
	}
	if tracer != nil || registry != nil {
		model.EnableTelemetry(tracer, registry)
	}

	var prof *sw.ProfilingRunner
	if *profile {
		prof = sw.NewProfilingRunner(model.Solver.Runner)
		model.Solver.Runner = prof
	}
	var hist sw.History

	if *resume != "" {
		if err := model.Solver.LoadCheckpoint(*resume); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("resumed from %s at step %d (t=%.2fh)\n",
			*resume, model.Solver.StepCount, model.Solver.Time/3600)
	}

	// -days/-steps give the TOTAL trajectory length from t=0; a resumed run
	// integrates only the remainder, so an interrupted run plus its resume
	// reproduce the uninterrupted trajectory exactly.
	total := int(*days * testcases.Day / model.Config.Dt)
	if *stepsFlag > 0 {
		total = *stepsFlag
	}
	steps := total - model.Solver.StepCount
	if steps < 0 {
		steps = 0
	}
	fmt.Printf("%s\n", model.Mesh)
	fmt.Printf("mode=%s precision=%s reorder=%v dt=%.1fs steps=%d (total %d)\n", md, *precision, *reorder, model.Config.Dt, steps, total)

	inv0 := model.Invariants()
	fmt.Printf("initial: mass=%.6e energy=%.6e enstrophy=%.6e\n",
		inv0.Mass, inv0.TotalEnergy, inv0.PotentialEnstrophy)

	start := time.Now()
	for done := 0; done < steps; {
		n := *report
		if done+n > steps {
			n = steps - done
		}
		switch {
		case *checkpoint != "" && *ckptEvery > 0:
			if *history != "" && hist.Len() == 0 {
				hist.Sample(model.Solver)
			}
			err := model.Solver.RunControlled(n, sw.RunControl{
				CheckpointEvery: *ckptEvery,
				Checkpoint:      func(s *sw.Solver) error { return s.SaveCheckpoint(*checkpoint) },
				ReportEvery:     *report,
				Report: func(s *sw.Solver) error {
					if *history != "" {
						hist.Sample(s)
					}
					return nil
				},
			})
			if err != nil {
				log.Fatal(err)
			}
		case *history != "":
			model.Solver.RunWithHistory(n, *report, &hist)
		default:
			model.Run(n)
		}
		done += n
		inv := model.Invariants()
		fmt.Printf("step %6d t=%7.2fh  dMass=%+.2e dE=%+.2e dZ=%+.2e  h=[%.1f,%.1f] maxU=%.2f\n",
			model.Solver.StepCount, model.Time()/3600,
			(inv.Mass-inv0.Mass)/inv0.Mass,
			(inv.TotalEnergy-inv0.TotalEnergy)/inv0.TotalEnergy,
			(inv.PotentialEnstrophy-inv0.PotentialEnstrophy)/inv0.PotentialEnstrophy,
			inv.MinH, inv.MaxH, inv.MaxSpeed)
	}
	if *checkpoint != "" {
		// Always leave a final checkpoint, whatever the cadence: the file
		// then holds exactly the finished trajectory, so two runs reaching
		// the same total step count produce byte-identical checkpoints.
		if err := model.Solver.SaveCheckpoint(*checkpoint); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote checkpoint %s (step %d)\n", *checkpoint, model.Solver.StepCount)
	}
	wall := time.Since(start)
	perStep := 0.0
	if steps > 0 {
		perStep = wall.Seconds() * 1000 / float64(steps)
	}
	fmt.Printf("wall time: %v (%.1f ms/step real", wall, perStep)
	if t := model.SimulatedPlatformTime(); t > 0 {
		fmt.Printf(", %.1f ms/step on simulated CPU+Phi node", t*1000/float64(steps))
	}
	fmt.Println(")")

	if prof != nil {
		fmt.Println("\nper-pattern profile (real wall time):")
		fmt.Printf("  %-4s %-28s %8s %10s %7s\n", "ID", "kernel", "calls", "total", "share")
		for _, e := range prof.Report() {
			fmt.Printf("  %-4s %-28s %8d %10v %6.1f%%\n", e.ID, e.Kernel, e.Calls, e.Total.Round(time.Microsecond), e.Share*100)
		}
	}
	if *history != "" {
		f, err := os.Create(*history)
		if err != nil {
			log.Fatal(err)
		}
		if err := hist.WriteCSV(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d history samples to %s\n", hist.Len(), *history)
	}
	if tracer != nil {
		fmt.Println()
		tracer.Summary().WriteText(os.Stdout)
		writeArtifact(*traceOut, tracer.WriteChromeTrace)
		fmt.Printf("wrote %d spans to %s (open in chrome://tracing or ui.perfetto.dev)\n",
			tracer.NumSpans(), *traceOut)
	}
	if registry != nil {
		writeArtifact(*metricsOut, func(w io.Writer) error {
			if err := registry.WritePrometheus(w); err != nil {
				return err
			}
			if prof != nil {
				// The per-pattern profile timers live in the runner's own
				// registry under disjoint names (sw_pattern_*); append them.
				return prof.Registry().WritePrometheus(w)
			}
			return nil
		})
		fmt.Printf("wrote Prometheus metrics to %s\n", *metricsOut)
	}
}

// writeArtifact creates path and streams write into it.
func writeArtifact(path string, write func(w io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := write(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
}
