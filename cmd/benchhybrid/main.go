// Command benchhybrid reproduces Figure 7: per-step execution time and
// speedup of the kernel-level and pattern-driven hybrid designs against the
// original single-core-per-process code, across the four paper meshes, on
// the simulated CPU+Xeon-Phi platform. With -real it also measures real Go
// wall-clock per step for every execution mode on an actually built mesh.
//
// Usage:
//
//	benchhybrid
//	benchhybrid -real -level 5
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	mpas "repro"
	"repro/internal/mesh"
	"repro/internal/results"
	"repro/internal/telemetry"
)

func main() {
	real := flag.Bool("real", false, "also measure real wall-clock on a built mesh")
	level := flag.Int("level", 5, "mesh level for -real")
	steps := flag.Int("steps", 5, "steps to average for -real")
	traceOut := flag.String("trace", "", "with -real: write a Chrome trace of the pattern-driven run to this file")
	metricsOut := flag.String("metrics", "", "with -real: write Prometheus metrics of the pattern-driven run to this file")
	planHost := flag.Bool("plan-host", true, "with -real: run fully-host kernels of the hybrid modes through the compiled plan runner")
	flag.Parse()

	mpas.Figure7().WriteText(os.Stdout)

	if !*real {
		if *traceOut != "" || *metricsOut != "" {
			fmt.Fprintln(os.Stderr, "note: -trace/-metrics apply to the -real run; pass -real to produce them")
		}
		return
	}
	fmt.Println()
	msh, err := mesh.Build(*level, mesh.Options{LloydIterations: 1})
	if err != nil {
		log.Fatal(err)
	}
	t := results.NewTable(
		fmt.Sprintf("Real Go wall-clock per step (%d cells, %d steps averaged)", msh.NCells, *steps),
		"Mode", "ms/step")
	var tracer *telemetry.Tracer
	var registry *telemetry.Registry
	if *traceOut != "" {
		tracer = telemetry.NewTracer()
	}
	if *metricsOut != "" {
		registry = telemetry.NewRegistry()
	}
	for _, mode := range []mpas.Mode{mpas.Serial, mpas.Threaded, mpas.Plan, mpas.KernelLevel, mpas.PatternDriven} {
		m, err := mpas.New(mpas.Options{Mesh: msh, TestCase: mpas.TC5, Mode: mode,
			AdjustableFraction: 0.3, PlanHost: *planHost})
		if err != nil {
			log.Fatal(err)
		}
		// The observability artifacts cover the paper's flagship design.
		if mode == mpas.PatternDriven && (tracer != nil || registry != nil) {
			m.EnableTelemetry(tracer, registry)
		}
		d := mpas.MeasuredStep(m, *steps)
		m.Close()
		t.AddRow(mode.String(), float64(d.Microseconds())/1000)
	}
	t.WriteText(os.Stdout)
	if tracer != nil {
		writeArtifact(*traceOut, tracer.WriteChromeTrace)
		fmt.Printf("wrote %d spans of the pattern-driven run to %s\n", tracer.NumSpans(), *traceOut)
	}
	if registry != nil {
		writeArtifact(*metricsOut, registry.WritePrometheus)
		fmt.Printf("wrote Prometheus metrics of the pattern-driven run to %s\n", *metricsOut)
	}
}

// writeArtifact creates path and streams write into it.
func writeArtifact(path string, write func(w io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := write(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
}
