// Command benchhybrid reproduces Figure 7: per-step execution time and
// speedup of the kernel-level and pattern-driven hybrid designs against the
// original single-core-per-process code, across the four paper meshes, on
// the simulated CPU+Xeon-Phi platform. With -real it also measures real Go
// wall-clock per step for every execution mode on an actually built mesh.
//
// Usage:
//
//	benchhybrid
//	benchhybrid -real -level 5
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	mpas "repro"
	"repro/internal/mesh"
	"repro/internal/results"
)

func main() {
	real := flag.Bool("real", false, "also measure real wall-clock on a built mesh")
	level := flag.Int("level", 5, "mesh level for -real")
	steps := flag.Int("steps", 5, "steps to average for -real")
	flag.Parse()

	mpas.Figure7().WriteText(os.Stdout)

	if !*real {
		return
	}
	fmt.Println()
	msh, err := mesh.Build(*level, mesh.Options{LloydIterations: 1})
	if err != nil {
		log.Fatal(err)
	}
	t := results.NewTable(
		fmt.Sprintf("Real Go wall-clock per step (%d cells, %d steps averaged)", msh.NCells, *steps),
		"Mode", "ms/step")
	for _, mode := range []mpas.Mode{mpas.Serial, mpas.Threaded, mpas.KernelLevel, mpas.PatternDriven} {
		m, err := mpas.New(mpas.Options{Mesh: msh, TestCase: mpas.TC5, Mode: mode, AdjustableFraction: 0.3})
		if err != nil {
			log.Fatal(err)
		}
		d := mpas.MeasuredStep(m, *steps)
		m.Close()
		t.AddRow(mode.String(), float64(d.Microseconds())/1000)
	}
	t.WriteText(os.Stdout)
}
