// Command swserver runs the shallow-water model as a job service: an HTTP
// API that accepts simulation requests, runs them on a bounded worker pool
// with admission control, spools periodic checkpoints so jobs survive
// crashes and restarts, and streams NDJSON invariant diagnostics.
//
// Usage:
//
//	swserver -addr :8080 -spool ./spool -workers 2
//
//	curl -s -X POST localhost:8080/jobs -d '{"test_case":5,"level":3,"days":1,"mode":"pattern"}'
//	curl -s localhost:8080/jobs/<id>/events        # NDJSON diagnostics
//	curl -s localhost:8080/metrics                 # Prometheus metrics
//
// SIGTERM/SIGINT drains gracefully: admission stops, in-flight jobs are
// checkpointed and suspended, and the next start resumes them.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/cluster/client"
	"repro/internal/serve"
	"repro/internal/telemetry"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address (use 127.0.0.1:0 for an ephemeral port)")
	workers := flag.Int("workers", 2, "worker pool size (max concurrently running jobs)")
	queueCap := flag.Int("queue", 16, "run queue capacity (beyond it submissions get 429)")
	spoolDir := flag.String("spool", "spool", "spool directory for durable job state")
	ckptEvery := flag.Int("checkpoint-every", 50, "default checkpoint cadence in steps")
	jobTimeout := flag.Duration("job-timeout", 0, "default per-job wall-clock deadline (0 = none)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max wait for graceful drain on SIGTERM")
	register := flag.String("register", "", "cluster coordinator URL to register with (optional)")
	name := flag.String("name", "", "worker name for cluster registration (required with -register)")
	advertise := flag.String("advertise", "", "URL the coordinator should reach this worker at (default http://<listen addr>)")
	flag.Parse()

	srv, err := serve.New(serve.Config{
		Workers:         *workers,
		QueueCap:        *queueCap,
		SpoolDir:        *spoolDir,
		CheckpointEvery: *ckptEvery,
		JobTimeoutSec:   jobTimeout.Seconds(),
		Registry:        telemetry.NewRegistry(),
		Logf:            log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	// The parseable "listening on" line goes to stdout so scripts (and the
	// CI smoke test) can discover an ephemeral port.
	fmt.Printf("swserver listening on %s (workers=%d queue=%d spool=%s)\n",
		ln.Addr(), *workers, *queueCap, *spoolDir)

	httpSrv := &http.Server{Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	// Cluster mode: register with the coordinator, then keep re-registering
	// so a restarted coordinator relearns the fleet. Registration refreshes
	// the coordinator-side heartbeat too, but liveness is primarily the
	// coordinator probing /healthz.
	regStop := make(chan struct{})
	if *register != "" {
		if *name == "" {
			log.Fatal("swserver: -register requires -name")
		}
		self := *advertise
		if self == "" {
			self = "http://" + ln.Addr().String()
		}
		go registerLoop(*register, *name, self, regStop)
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		log.Printf("swserver: %v: draining (checkpointing in-flight jobs)", sig)
	case err := <-errCh:
		log.Fatalf("swserver: serve: %v", err)
	}

	close(regStop)
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		log.Printf("swserver: drain incomplete: %v", err)
		os.Exit(1)
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("swserver: http shutdown: %v", err)
	}
	log.Printf("swserver: drained cleanly")
}

// registerLoop announces this worker to the coordinator at start and every
// few seconds after — tolerant of a coordinator that comes up later or
// restarts, thanks to the client's retry/backoff.
func registerLoop(coordinator, name, selfURL string, stop <-chan struct{}) {
	cl := client.New(coordinator, client.Config{})
	body := cluster.Worker{Name: name, URL: selfURL}
	announced := false
	for {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		err := cl.PostJSON(ctx, "/cluster/workers", body, nil)
		cancel()
		if err != nil {
			log.Printf("swserver: registering with %s: %v", coordinator, err)
		} else if !announced {
			log.Printf("swserver: registered as %q with %s", name, coordinator)
			announced = true
		}
		select {
		case <-stop:
			return
		case <-time.After(5 * time.Second):
		}
	}
}
