package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/conform"
	"repro/internal/mesh"
	"repro/internal/serve"
	"repro/internal/sw"
	"repro/internal/testcases"
)

// buildSwserver compiles the daemon.
func buildSwserver(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "swserver")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("building swserver: %v\n%s", err, out)
	}
	return bin
}

// startSwserver launches the binary over spoolDir on an ephemeral port and
// parses the base URL from the "listening on" stdout line.
func startSwserver(t *testing.T, bin, spoolDir string, extra ...string) (*exec.Cmd, string) {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0", "-spool", spoolDir,
		"-workers", "1", "-checkpoint-every", "5"}, extra...)
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stdout)
	lineCh := make(chan string, 1)
	// One goroutine finds the announcement, then keeps draining stdout so
	// the child never blocks on a full pipe.
	go func() {
		announced := false
		for sc.Scan() {
			line := sc.Text()
			if !announced && strings.HasPrefix(line, "swserver listening on ") {
				lineCh <- line
				announced = true
			}
		}
		close(lineCh)
	}()
	select {
	case line, ok := <-lineCh:
		if !ok {
			t.Fatal("swserver exited before announcing its address")
		}
		addr := strings.Fields(strings.TrimPrefix(line, "swserver listening on "))[0]
		return cmd, "http://" + addr
	case <-time.After(30 * time.Second):
		_ = cmd.Process.Kill()
		t.Fatal("swserver did not announce an address")
	}
	return nil, ""
}

func postJob(t *testing.T, base string, spec map[string]any) serve.JobStatus {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		out, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: %d: %s", resp.StatusCode, out)
	}
	var st serve.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func jobStatus(t *testing.T, base, id string) (serve.JobStatus, error) {
	resp, err := http.Get(base + "/jobs/" + id)
	if err != nil {
		return serve.JobStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return serve.JobStatus{}, fmt.Errorf("status %d", resp.StatusCode)
	}
	var st serve.JobStatus
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

func waitCompleted(t *testing.T, base, id string, timeout time.Duration) serve.JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		st, err := jobStatus(t, base, id)
		if err == nil {
			if st.State == serve.StateCompleted {
				return st
			}
			if st.State.Terminal() {
				t.Fatalf("job %s ended %s (%s)", id, st.State, st.Error)
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s never completed", id)
	return serve.JobStatus{}
}

// finalState downloads the job's checkpoint and loads it into a solver.
func finalState(t *testing.T, base, id string, level int) *sw.Solver {
	t.Helper()
	resp, err := http.Get(base + "/jobs/" + id + "/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint: %d", resp.StatusCode)
	}
	m, err := mesh.Build(level, mesh.Options{LloydIterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	s, err := sw.NewSolver(m, sw.DefaultConfig(m))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ReadCheckpoint(resp.Body); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestKillDashNineRecovery is the ISSUE's crash acceptance path against the
// real binary: submit a job, SIGKILL the server mid-run, restart it over
// the same spool, and require the job to finish with a trajectory
// conform-identical to an uninterrupted in-process run.
func TestKillDashNineRecovery(t *testing.T) {
	bin := buildSwserver(t)
	spool := t.TempDir()
	const steps = 40

	cmd, base := startSwserver(t, bin, spool)
	st := postJob(t, base, map[string]any{
		"test_case": 5, "level": 2, "mode": "serial", "steps": steps,
		"report_every": 5, "checkpoint_every": 5, "step_delay_ms": 10,
	})

	// Wait for a durable checkpoint plus visible progress, then kill -9.
	ckpt := filepath.Join(spool, st.ID, "ckpt.bin")
	deadline := time.Now().Add(60 * time.Second)
	for {
		if _, err := os.Stat(ckpt); err == nil {
			if got, err := jobStatus(t, base, st.ID); err == nil && got.StepsDone >= 7 {
				if got.State.Terminal() {
					t.Fatalf("job finished before the kill window (%s)", got.State)
				}
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint appeared before the kill")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil { // SIGKILL: no drain, no cleanup
		t.Fatal(err)
	}
	_ = cmd.Wait()

	// Restart over the same spool; recovery re-admits and finishes the job.
	cmd2, base2 := startSwserver(t, bin, spool)
	defer func() {
		_ = cmd2.Process.Kill()
		_ = cmd2.Wait()
	}()
	fin := waitCompleted(t, base2, st.ID, 120*time.Second)
	if fin.Resumes < 1 {
		t.Errorf("recovered job reports %d resumes, want >= 1", fin.Resumes)
	}
	if fin.StepsDone != steps {
		t.Errorf("recovered job finished at %d steps, want %d", fin.StepsDone, steps)
	}

	// Conform-identical to the uninterrupted trajectory.
	served := finalState(t, base2, st.ID, 2)
	m, err := mesh.Build(2, mesh.Options{LloydIterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := sw.NewSolver(m, sw.DefaultConfig(m))
	if err != nil {
		t.Fatal(err)
	}
	testcases.SetupTC5(ref)
	ref.Run(steps)
	d := conform.CompareStates(ref.State.H, ref.State.U, served.State.H, served.State.U)
	if !conform.ExactTol.Accepts(d) {
		t.Fatalf("kill-9-recovered trajectory diverges: %v", d)
	}
}

// TestSigtermDrain: SIGTERM exits cleanly, leaves the in-flight job
// suspended-by-drain in the spool, and a restart auto-resumes it.
func TestSigtermDrain(t *testing.T) {
	bin := buildSwserver(t)
	spool := t.TempDir()
	const steps = 40

	cmd, base := startSwserver(t, bin, spool)
	st := postJob(t, base, map[string]any{
		"test_case": 5, "level": 2, "steps": steps,
		"report_every": 5, "step_delay_ms": 10,
	})
	// Let it start running.
	deadline := time.Now().Add(60 * time.Second)
	for {
		got, err := jobStatus(t, base, st.ID)
		if err == nil && got.State == serve.StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started running")
		}
		time.Sleep(10 * time.Millisecond)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("swserver did not exit cleanly on SIGTERM: %v", err)
	}

	// The spool records the drain suspension durably.
	data, err := os.ReadFile(filepath.Join(spool, st.ID, "status.json"))
	if err != nil {
		t.Fatal(err)
	}
	var parked serve.JobStatus
	if err := json.Unmarshal(data, &parked); err != nil {
		t.Fatal(err)
	}
	if parked.State != serve.StateSuspended || parked.SuspendReason != serve.SuspendDrain {
		t.Fatalf("spooled state %s/%q, want suspended/drain", parked.State, parked.SuspendReason)
	}
	if _, err := os.Stat(filepath.Join(spool, st.ID, "ckpt.bin")); err != nil {
		t.Fatal("drain left no checkpoint")
	}

	// Restart: the drain-suspended job resumes automatically and completes.
	cmd2, base2 := startSwserver(t, bin, spool)
	defer func() {
		_ = cmd2.Process.Kill()
		_ = cmd2.Wait()
	}()
	fin := waitCompleted(t, base2, st.ID, 120*time.Second)
	if fin.StepsDone != steps {
		t.Errorf("finished at %d steps, want %d", fin.StepsDone, steps)
	}
}
