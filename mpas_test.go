package mpas

import (
	"math"
	"strings"
	"testing"

	"repro/internal/mesh"
)

func newModel(t testing.TB, opts Options) *Model {
	t.Helper()
	m, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m
}

func TestNewDefaults(t *testing.T) {
	m := newModel(t, Options{Level: 3})
	if m.Mesh.NCells != 642 {
		t.Errorf("level 3 cells %d", m.Mesh.NCells)
	}
	if m.Mode != Serial {
		t.Errorf("default mode %v", m.Mode)
	}
	if m.Config.Dt <= 0 {
		t.Error("no default dt")
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New(Options{Level: 3, TestCase: 99}); err == nil {
		t.Error("bad test case accepted")
	}
	if _, err := New(Options{Level: 3, Mode: Mode(42)}); err == nil {
		t.Error("bad mode accepted")
	}
}

func TestModesProduceIdenticalTrajectories(t *testing.T) {
	msh, err := mesh.Build(3, mesh.Options{LloydIterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	var ref []float64
	for _, mode := range []Mode{Serial, Threaded, Plan, TaskPlan, KernelLevel, PatternDriven} {
		m := newModel(t, Options{Mesh: msh, TestCase: TC5, Mode: mode,
			Workers: 2, DeviceWorkers: 2, AdjustableFraction: 0.25,
			PlanHost: mode == KernelLevel})
		m.Run(4)
		if ref == nil {
			ref = append([]float64(nil), m.Solver.State.H...)
			continue
		}
		for c := range ref {
			if m.Solver.State.H[c] != ref[c] {
				t.Fatalf("mode %v diverges from serial at cell %d", mode, c)
			}
		}
	}
}

// TestPlanModeAdvectionOnly pins the construction order of Plan mode: TC1's
// setup flips Cfg.AdvectionOnly, so the plan must be compiled after the test
// case is applied (a plan specialized on the wrong configuration would either
// refuse the compiled path or diverge).
func TestPlanModeAdvectionOnly(t *testing.T) {
	msh, err := mesh.Build(2, mesh.Options{LloydIterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	ref := newModel(t, Options{Mesh: msh, TestCase: TC1})
	ref.Run(3)
	m := newModel(t, Options{Mesh: msh, TestCase: TC1, Mode: Plan, Workers: 2})
	m.Run(3)
	for c := range ref.Solver.State.H {
		if m.Solver.State.H[c] != ref.Solver.State.H[c] {
			t.Fatalf("plan TC1 diverges from serial at cell %d", c)
		}
	}
}

func TestRunDaysAndTime(t *testing.T) {
	m := newModel(t, Options{Level: 2, TestCase: TC2})
	m.RunDays(0.2)
	if m.Time() <= 0 {
		t.Error("time did not advance")
	}
	want := float64(m.StepsPerDay()) * m.Config.Dt
	if math.Abs(want-86400) > m.Config.Dt {
		t.Errorf("StepsPerDay covers %v s", want)
	}
}

func TestHybridModelAccumulatesPlatformTime(t *testing.T) {
	m := newModel(t, Options{Level: 2, TestCase: TC2, Mode: PatternDriven,
		AdjustableFraction: -1, Workers: 2, DeviceWorkers: 2})
	m.Run(2)
	if m.SimulatedPlatformTime() <= 0 {
		t.Error("no simulated platform time")
	}
	s := newModel(t, Options{Level: 2, TestCase: TC2})
	s.Run(1)
	if s.SimulatedPlatformTime() != 0 {
		t.Error("serial mode should not accumulate platform time")
	}
}

func TestHeightErrorAndTotalHeight(t *testing.T) {
	m := newModel(t, Options{Level: 3, TestCase: TC2})
	ref := append([]float64(nil), m.Solver.State.H...)
	m.Run(5)
	norms := m.HeightError(ref)
	if norms.L2 <= 0 || norms.L2 > 1e-2 {
		t.Errorf("unexpected TC2 error %v", norms.L2)
	}
	th := m.TotalHeight()
	if len(th) != m.Mesh.NCells {
		t.Error("TotalHeight length")
	}
}

func TestModeStrings(t *testing.T) {
	for m, want := range map[Mode]string{Serial: "serial", Threaded: "threaded",
		KernelLevel: "kernel-level", PatternDriven: "pattern-driven",
		Plan: "plan", TaskPlan: "taskplan"} {
		if m.String() != want {
			t.Errorf("%d -> %s", m, m.String())
		}
	}
	if Mode(9).String() == "" {
		t.Error("unknown mode string empty")
	}
}

func TestTable1Rendering(t *testing.T) {
	tab := Table1()
	if tab.NumRows() != 21 {
		t.Errorf("Table I rows %d, want 21 instances", tab.NumRows())
	}
	s := tab.String()
	for _, want := range []string{"compute_tend", "B1", "pv_edge", "mass", "velocity"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table I missing %q", want)
		}
	}
}

func TestTable2Rendering(t *testing.T) {
	s := Table2().String()
	if !strings.Contains(s, "Xeon Phi 5110P") || !strings.Contains(s, "E5-2680") {
		t.Error("Table II devices missing")
	}
}

func TestTable3Rendering(t *testing.T) {
	tab := Table3(0) // counts only, no mesh builds in unit tests
	if tab.NumRows() != 4 {
		t.Errorf("Table III rows %d", tab.NumRows())
	}
	s := tab.String()
	for _, want := range []string{"40962", "163842", "655362", "2621442"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table III missing %s", want)
		}
	}
}

func TestFigure5SmallScale(t *testing.T) {
	// A scaled-down Figure 5: level 3 mesh, a tenth of a day. The hybrid
	// and serial totals must agree within machine precision.
	res, err := Figure5(3, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxAbsDiff/res.FieldScale > 1e-12 {
		t.Errorf("Figure 5 difference %v of field scale %v", res.MaxAbsDiff, res.FieldScale)
	}
	if len(res.SerialHeight) != len(res.HybridHeight) {
		t.Error("field lengths differ")
	}
	// Total height stays in the physical band (roughly 4800..6000 m).
	for _, h := range res.SerialHeight {
		if h < 4000 || h > 7000 {
			t.Fatalf("total height %v out of band", h)
		}
	}
}

func TestFigure6Rendering(t *testing.T) {
	tab := Figure6(655362)
	if tab.NumRows() != 6 {
		t.Errorf("Figure 6 rows %d", tab.NumRows())
	}
	if !strings.Contains(tab.String(), "Refactoring") {
		t.Error("Figure 6 missing refactoring rung")
	}
}

func TestFigure7Rendering(t *testing.T) {
	tab := Figure7()
	if tab.NumRows() != 4 {
		t.Errorf("Figure 7 rows %d", tab.NumRows())
	}
}

func TestFigure8And9Rendering(t *testing.T) {
	if rows := Figure8(655362).NumRows(); rows != 7 {
		t.Errorf("Figure 8 rows %d", rows)
	}
	if rows := Figure9().NumRows(); rows != 4 {
		t.Errorf("Figure 9 rows %d", rows)
	}
}

func TestMeasuredStep(t *testing.T) {
	m := newModel(t, Options{Level: 2, TestCase: TC2})
	if d := MeasuredStep(m, 2); d <= 0 {
		t.Error("non-positive measured step")
	}
	if d := MeasuredStep(m, 0); d <= 0 {
		t.Error("n<1 not clamped")
	}
}

func TestDistributedRunFacade(t *testing.T) {
	msh, err := mesh.Build(3, mesh.Options{LloydIterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	wall, err := DistributedRun(msh, 3, 2, TC5)
	if err != nil {
		t.Fatal(err)
	}
	if wall <= 0 {
		t.Error("non-positive distributed wall time")
	}
	if _, err := DistributedRun(msh, 2, 1, TestCase(77)); err == nil {
		t.Error("bad test case accepted")
	}
}
