// Package mpas is the public facade of the MPAS shallow-water
// pattern-driven hybrid acceleration reproduction (Zhang et al., ICPP 2015).
//
// It wires together the substrates under internal/ — the SCVT mesh builder,
// the TRiSK shallow-water core organized as Table-I pattern instances, the
// data-flow graph, the thread runtime, the simulated CPU+Xeon-Phi platform,
// and the hybrid executors — behind a small Model API:
//
//	model, err := mpas.New(mpas.Options{Level: 4, TestCase: mpas.TC5,
//	    Mode: mpas.PatternDriven})
//	model.RunDays(1)
//	fmt.Println(model.Invariants())
//
// The experiment harness entry points (Figure5 ... Figure9, Table1, Table3)
// regenerate every table and figure of the paper's evaluation; see
// EXPERIMENTS.md for the recorded paper-vs-reproduction comparison.
package mpas

import (
	"fmt"
	"math"

	"repro/internal/hybrid"
	"repro/internal/mesh"
	"repro/internal/par"
	"repro/internal/sw"
	"repro/internal/telemetry"
	"repro/internal/testcases"
)

// TestCase selects a Williamson et al. (1992) initial condition.
type TestCase int

// The implemented test cases.
const (
	// TC1 is cosine-bell advection with the wind tilted 45 degrees from
	// zonal (prescribed velocity; the solver runs advection-only).
	TC1 TestCase = 1
	// TC2 is the steady zonal geostrophic flow (exact solution known).
	TC2 TestCase = 2
	// TC5 is the zonal flow over an isolated mountain (the paper's
	// correctness case, Figure 5).
	TC5 TestCase = 5
	// TC6 is the wavenumber-4 Rossby-Haurwitz wave.
	TC6 TestCase = 6
	// Galewsky is the Galewsky et al. (2004) barotropic instability:
	// a balanced jet with a height perturbation that rolls up by day ~5.
	Galewsky TestCase = 8
)

// Mode selects the execution design.
type Mode int

// Execution designs, in increasing order of sophistication.
const (
	// Serial runs every pattern on one goroutine — the original code.
	Serial Mode = iota
	// Threaded runs each kernel as one parallel region on a worker pool
	// (the OpenMP analogue, §4.B).
	Threaded
	// KernelLevel is the Figure 2 hybrid: whole kernels placed on host or
	// device.
	KernelLevel
	// PatternDriven is the Figure 4(b) hybrid: pattern instances split
	// across host and device along the data-flow graph.
	PatternDriven
	// Plan compiles the whole RK-4 step into one flat schedule executed
	// inside a single parallel region, with barriers only at true
	// dependency frontiers and dead diagnostics elided (bitwise-identical
	// prognostics; purely derived fields with no consumer — divergence,
	// cell vorticity, the velocity reconstruction — go stale between
	// explicit Init calls).
	Plan
	// TaskPlan executes the same compiled schedule as Plan but lowered once
	// more, into a dependency-counted task graph: each (op, tile) pair is a
	// task released point-to-point by its true predecessors and run on
	// work-stealing deques, so the per-level barriers disappear entirely.
	// Bitwise-identical to Plan (and hence to Serial on prognostics).
	TaskPlan
)

func (m Mode) String() string {
	switch m {
	case Serial:
		return "serial"
	case Threaded:
		return "threaded"
	case KernelLevel:
		return "kernel-level"
	case PatternDriven:
		return "pattern-driven"
	case Plan:
		return "plan"
	case TaskPlan:
		return "taskplan"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Options configures a Model.
type Options struct {
	// Level is the icosahedral subdivision level (cells = 10*4^level + 2).
	// Paper meshes: 6 (120 km) through 9 (15 km). Default 4.
	Level int
	// LloydIterations relaxes the mesh toward centroidal; default 2.
	LloydIterations int
	// TestCase selects the initial condition; default TC5.
	TestCase TestCase
	// Mode selects the execution design; default Serial.
	Mode Mode
	// Workers sets the worker-pool size for Threaded mode (<=0 means
	// GOMAXPROCS) and the host pool size for hybrid modes.
	Workers int
	// DeviceWorkers sets the device pool size for hybrid modes (<=0 means
	// GOMAXPROCS).
	DeviceWorkers int
	// AdjustableFraction overrides the pattern-driven adjustable host
	// fraction; negative means auto-tune on the platform model.
	AdjustableFraction float64
	// PlanHost installs a compiled execution plan (sw.PlanRunner) as the
	// hybrid executor's host-side delegate: kernels the schedule places
	// entirely on the host run through its compiled per-kernel schedules
	// instead of the executor's level-by-level dispatch. Hybrid modes only;
	// results are bitwise-unchanged.
	PlanHost bool
	// HighOrderThickness enables the C1+D2 high-order edge interpolation.
	HighOrderThickness bool
	// Dt overrides the time step (seconds); 0 means a stable default.
	Dt float64
	// Precision selects the step arithmetic: "" or "float64" for the
	// reference double-precision path, "float32" for the fast mode — the
	// whole RK-4 step computed in single precision over CSR-packed SoA
	// arrays (sw.Fast32Runner), streaming half the bytes per step. The
	// float64 State remains the source of truth (loaded/stored around each
	// step), so checkpointing and diagnostics keep working; trajectories
	// track the float64 run within the relative band documented in
	// internal/conform (Strategy.RelBand). Host-only modes (Serial,
	// Threaded, Plan) only.
	Precision string
	// Mesh reuses an existing mesh instead of building one (Level and
	// LloydIterations are then ignored).
	Mesh *mesh.Mesh
	// Reorder applies the locality renumbering (mesh.ComputeReorder): cells
	// relabeled along a spherical space-filling curve, edges/vertices by
	// first touch, so the kernels' indirect gathers land in cache-resident
	// lines on large meshes. The trajectory is exactly a permutation of the
	// canonical run (0 ULP; proven by internal/conform) and checkpoints
	// stay in canonical numbering, so resume works across the setting. When
	// Mesh is supplied it is not modified — the model runs on a renumbered
	// copy.
	Reorder bool
}

// Model is a runnable shallow-water model instance.
type Model struct {
	Mesh   *mesh.Mesh
	Solver *sw.Solver
	Config sw.Config
	Mode   Mode
	// Reorder is the locality renumbering in effect (nil when the model
	// runs in canonical numbering). Mesh and all solver state are in the
	// renumbered order; use the maps to convert fields to canonical.
	Reorder *mesh.Reorder

	pool *par.Pool
	exec *hybrid.Executor
}

// New builds a model.
func New(opts Options) (*Model, error) {
	if opts.Level == 0 {
		opts.Level = 4
	}
	if opts.TestCase == 0 {
		opts.TestCase = TC5
	}
	switch opts.Precision {
	case "", "float64", "float32":
	default:
		return nil, fmt.Errorf("mpas: unknown precision %q (want float64 or float32)", opts.Precision)
	}
	if opts.Precision == "float32" {
		switch opts.Mode {
		case Serial, Threaded, Plan, TaskPlan:
		default:
			return nil, fmt.Errorf("mpas: precision float32 requires a host-only mode (serial, threaded, plan, taskplan), not %v", opts.Mode)
		}
	}
	m := opts.Mesh
	if m == nil {
		lloyd := opts.LloydIterations
		if lloyd == 0 {
			lloyd = 2
		}
		var err error
		m, err = mesh.Build(opts.Level, mesh.Options{LloydIterations: lloyd})
		if err != nil {
			return nil, err
		}
	}
	// The configuration (notably the stable Dt) is derived from the
	// canonical mesh BEFORE any renumbering, so reordered and canonical
	// runs share bit-identical parameters.
	cfg := sw.DefaultConfig(m)
	cfg.HighOrderThickness = opts.HighOrderThickness
	if opts.Dt > 0 {
		cfg.Dt = opts.Dt
	}
	var ren *mesh.Reorder
	if opts.Reorder {
		ren = mesh.ComputeReorder(m)
		rm, err := ren.Apply(m)
		if err != nil {
			return nil, fmt.Errorf("mpas: reorder: %w", err)
		}
		m = rm
	}
	s, err := sw.NewSolver(m, cfg)
	if err != nil {
		return nil, err
	}
	s.Renumber = ren
	mod := &Model{Mesh: m, Solver: s, Config: cfg, Mode: opts.Mode, Reorder: ren}

	switch opts.Mode {
	case Serial:
		s.Runner = sw.SerialRunner{}
	case Threaded:
		mod.pool = par.NewPool(opts.Workers)
		s.Runner = sw.PoolRunner{Pool: mod.pool}
	case KernelLevel:
		mod.exec = hybrid.NewHybridSolver(s, hybrid.KernelLevelSchedule(),
			opts.Workers, opts.DeviceWorkers)
	case PatternDriven:
		frac := opts.AdjustableFraction
		if frac < 0 {
			frac, _ = hybrid.TunePatternDriven(meshCounts(m))
		}
		mod.exec = hybrid.NewHybridSolver(s, hybrid.PatternDrivenSchedule(frac),
			opts.Workers, opts.DeviceWorkers)
	case Plan, TaskPlan:
		// The runner is compiled after the test-case setup below: the plan
		// specializes on the configuration, and e.g. TC1 flips AdvectionOnly
		// during setup.
		mod.pool = par.NewPool(opts.Workers)
	default:
		return nil, fmt.Errorf("mpas: unknown mode %v", opts.Mode)
	}

	switch opts.TestCase {
	case TC1:
		testcases.SetupTC1(s, math.Pi/4)
	case TC2:
		testcases.SetupTC2(s)
	case TC5:
		testcases.SetupTC5(s)
	case TC6:
		testcases.SetupTC6(s)
	case Galewsky:
		testcases.SetupGalewsky(s, true)
	default:
		return nil, fmt.Errorf("mpas: unknown test case %d", opts.TestCase)
	}
	if opts.Precision == "float32" {
		// The fast-mode runner, like the plan, specializes on the post-setup
		// configuration. It replaces whatever host runner the mode installed;
		// Init and other non-step paths still run float64 through its pool.
		if mod.pool == nil {
			w := opts.Workers
			if opts.Mode == Serial {
				w = 1
			}
			mod.pool = par.NewPool(w)
		}
		r, err := sw.NewFast32Runner(s, mod.pool)
		if err != nil {
			mod.pool.Close()
			return nil, fmt.Errorf("mpas: %w", err)
		}
		s.Runner = r
	} else if opts.Mode == Plan || opts.Mode == TaskPlan {
		newRunner := sw.NewPlanRunner
		if opts.Mode == TaskPlan {
			newRunner = sw.NewTaskPlanRunner
		}
		r, err := newRunner(s, mod.pool)
		if err != nil {
			mod.pool.Close()
			return nil, fmt.Errorf("mpas: %w", err)
		}
		s.Runner = r
	}
	if opts.PlanHost && mod.exec != nil {
		r, err := sw.NewPlanRunner(s, mod.exec.HostPool)
		if err != nil {
			mod.exec.Close()
			return nil, fmt.Errorf("mpas: plan host delegate: %w", err)
		}
		mod.exec.SetHostRunner(r)
	}
	return mod, nil
}

// Close releases worker pools. Safe to call multiple times.
func (m *Model) Close() {
	if m.pool != nil {
		m.pool.Close()
		m.pool = nil
	}
	if m.exec != nil {
		m.exec.Close()
		m.exec = nil
	}
}

// EnableTelemetry wires a tracer and/or metrics registry through every layer
// of the model: the solver (RK-stage and kernel spans, kernel timers), the
// thread pool (dispatch/grain counters), and — in hybrid modes — the
// executor (data-flow level spans, host/device split counters, imbalance
// histogram) and the simulated platform clock (gauges). Either argument may
// be nil; both nil-safe defaults cost nothing.
func (m *Model) EnableTelemetry(tr *telemetry.Tracer, reg *telemetry.Registry) {
	m.Solver.EnableTelemetry(tr, reg)
	if m.pool != nil {
		m.pool.Instrument(reg, "team")
	}
	if pr, ok := m.Solver.Runner.(*sw.PlanRunner); ok {
		pr.InstrumentTasks(reg)
	}
	if m.exec != nil {
		m.exec.EnableTelemetry(tr, reg)
	}
}

// Step advances one RK-4 time step.
func (m *Model) Step() { m.Solver.Step() }

// Run advances n steps.
func (m *Model) Run(n int) { m.Solver.Run(n) }

// StepsPerDay returns the number of steps covering one simulated day.
func (m *Model) StepsPerDay() int {
	return int(testcases.Day/m.Config.Dt + 0.5)
}

// RunDays advances the model by the given number of simulated days.
func (m *Model) RunDays(days float64) {
	m.Run(int(days*testcases.Day/m.Config.Dt + 0.5))
}

// Time returns the simulated physical time in seconds.
func (m *Model) Time() float64 { return m.Solver.Time }

// Invariants returns the conserved-quantity diagnostics.
func (m *Model) Invariants() sw.Invariants { return m.Solver.ComputeInvariants() }

// TotalHeight returns h+b per cell (Figure 5's plotted field).
func (m *Model) TotalHeight() []float64 { return testcases.TotalHeight(m.Solver) }

// HeightError returns the Williamson error norms of h against ref.
func (m *Model) HeightError(ref []float64) testcases.Norms {
	return testcases.HeightNorms(m.Mesh, m.Solver.State.H, ref)
}

// SimulatedPlatformTime returns the modeled platform seconds accumulated by
// a hybrid run (zero for Serial/Threaded modes, which are timed for real).
func (m *Model) SimulatedPlatformTime() float64 {
	if m.exec == nil {
		return 0
	}
	return m.exec.SimTime()
}
