#!/usr/bin/env bash
# Canonical repository check: vet, build, the full test suite under the race
# detector with a coverage profile, the differential-conformance matrix, and
# a coverage floor. CI and pre-commit hooks should run exactly this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race (with coverage) =="
go test -race -coverprofile=coverage.out -coverpkg=./... ./...

echo "== conformance matrix (cmd/conformance) =="
# Every execution strategy against the serial baseline: the named cases plus
# 20 seeded random cases on a small mesh, ending with the perturbation
# self-check. Non-zero exit on any divergence.
go run ./cmd/conformance -level 2 -steps 2 -random 20

echo "== coverage floor =="
total=$(go tool cover -func=coverage.out | awk '/^total:/ { sub(/%/, "", $3); print $3 }')
floor=$(cat scripts/coverage_baseline.txt)
echo "total coverage ${total}% (floor ${floor}%)"
awk -v t="$total" -v f="$floor" 'BEGIN { exit !(t+0 >= f+0) }' || {
    echo "ci.sh: FAIL — coverage ${total}% fell below the recorded floor ${floor}%" >&2
    echo "       (scripts/coverage_baseline.txt; raise it when coverage durably improves)" >&2
    exit 1
}

echo "ci.sh: all checks passed"
