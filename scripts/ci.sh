#!/usr/bin/env bash
# Canonical repository check: vet, build, the full test suite under the race
# detector with a coverage profile, the differential-conformance matrix, and
# a coverage floor. CI and pre-commit hooks should run exactly this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== bounds-check asm gate (hot kernels) =="
# The compiled-plan and fast32 kernels must stay bounds-check-free: the test
# recompiles internal/sw with -d=ssa/check_bce and greps the diagnostics.
# Run it on its own, without -race, because the unchecked views deliberately
# fall back to checked slices under the race detector.
go test -count=1 -run 'TestHotKernelsBoundsCheckFree' ./internal/sw

echo "== zero-alloc gate (level-7 plan + fast32 step) =="
# Also race-excluded: under -race the kernels run on checked slices and the
# level-7 build would blow the package test timeout in the coverage run.
go test -count=1 -run 'TestPlanStepZeroAllocBigMesh' .

echo "== go test -race (runtime + solver focus) =="
# The compiled-plan step, the pool runtime, and the TCP dist runtime are the
# concurrency hot spots: fail fast on them before the full (slower) coverage
# run below.
go test -race ./internal/par/... ./internal/sw/... ./internal/dist/...

echo "== task-runtime race stress (GOMAXPROCS 1, 2, NumCPU) =="
# The work-stealing task scheduler's interesting interleavings depend on how
# many OS threads the goroutines actually share: GOMAXPROCS=1 forces full
# cooperative multiplexing (stealing only happens across preemption points),
# 2 gives minimal real parallelism, NumCPU is the production shape. Run the
# deque/graph unit tests and the solver-level taskplan conformance under all
# three so a lost-wakeup or ordering bug can't hide behind one scheduler
# shape.
ncpu=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN)
for gmp in 1 2 "$ncpu"; do
    echo "-- GOMAXPROCS=$gmp --"
    GOMAXPROCS=$gmp go test -race -count=1 \
        -run 'TaskGraph|TaskPlan|Deque|Steal' \
        ./internal/par ./internal/sw
done

echo "== go test -race (with coverage) =="
go test -race -timeout 20m -coverprofile=coverage.out -coverpkg=./... ./...

echo "== conformance matrix (cmd/conformance) =="
# Every execution strategy against the serial baseline: the named cases plus
# 20 seeded random cases on a small mesh, ending with the perturbation
# self-check. Non-zero exit on any divergence.
go run ./cmd/conformance -level 2 -steps 2 -random 20

echo "== swrank distributed smoke (2 real processes over TCP vs serial hash) =="
smokedir=$(mktemp -d)
trap 'rm -rf "$smokedir"' EXIT
go build -o "$smokedir/swrank" ./cmd/swrank
serial_hash=$("$smokedir/swrank" -serial -case tc5 -level 3 -steps 2 -hash \
    | awk '/^swrank hash /{print $3}')
dist_hash=$("$smokedir/swrank" -launch 2 -case tc5 -level 3 -steps 2 -hash \
    | awk '/^swrank hash /{print $3; exit}')
[ -n "$serial_hash" ] || { echo "ci.sh: FAIL — serial swrank printed no hash" >&2; exit 1; }
[ "$dist_hash" = "$serial_hash" ] \
    || { echo "ci.sh: FAIL — 2-process hash '$dist_hash' != serial '$serial_hash'" >&2; exit 1; }
echo "swrank smoke OK (2-process hash $dist_hash matches serial)"

echo "== swrank -taskplan smoke (task-dataflow execution, canonical hash) =="
# Task-graph execution must be bitwise invisible: the same run driven by
# dependency-counted tasks instead of level barriers — serially and across 2
# real processes with halo exchange through hook tasks — hashes bit-for-bit
# to the SAME serial hash as above.
task_hash=$("$smokedir/swrank" -serial -taskplan -case tc5 -level 3 -steps 2 -hash \
    | awk '/^swrank hash /{print $3}')
[ "$task_hash" = "$serial_hash" ] \
    || { echo "ci.sh: FAIL — serial taskplan hash '$task_hash' != serial '$serial_hash'" >&2; exit 1; }
task_dist_hash=$("$smokedir/swrank" -launch 2 -taskplan -case tc5 -level 3 -steps 2 -hash \
    | awk '/^swrank hash /{print $3; exit}')
[ "$task_dist_hash" = "$serial_hash" ] \
    || { echo "ci.sh: FAIL — 2-process taskplan hash '$task_dist_hash' != serial '$serial_hash'" >&2; exit 1; }
echo "swrank -taskplan smoke OK (serial and 2-process task-graph hashes match serial)"

echo "== swrank -reorder smoke (renumbered 2-process run, canonical hash) =="
# Locality renumbering must be invisible in the output: the SFC-partitioned
# renumbered 2-process run, gathered and converted back to canonical
# numbering, hashes bit-for-bit to the SAME serial hash as above.
reorder_hash=$("$smokedir/swrank" -launch 2 -case tc5 -level 3 -steps 2 -hash -reorder \
    | awk '/^swrank hash /{print $3; exit}')
[ "$reorder_hash" = "$serial_hash" ] \
    || { echo "ci.sh: FAIL — reordered 2-process hash '$reorder_hash' != serial '$serial_hash'" >&2; exit 1; }
echo "swrank -reorder smoke OK (renumbered hash $reorder_hash matches serial)"

echo "== big-mesh ladder smoke (level 7, 163842 cells, with reorder columns) =="
# One Table-III rung end to end: serial, compiled-plan, and float32 fast
# mode on a real 163842-cell mesh, plus the per-rung report plumbing and the
# SFC-reorder columns (renumbered plan/fast32 + neighbor-distance pair). The
# full n=6..9 ladder (scripts/bench.sh) is too slow for every CI run; this
# smoke keeps the harness itself from silently regressing.
go run ./cmd/bigmesh -min-level 7 -max-level 7 -steps 2 -check=false -reorder

echo "== benchmark perf gate (newest two BENCH_pr*.json) =="
# Recorded step-kernel numbers may not regress more than 10% between the two
# newest checked-in benchmark summaries.
scripts/benchdiff.sh

echo "== swserver smoke (submit, poll, metrics, drain) =="
go build -o "$smokedir/swserver" ./cmd/swserver
"$smokedir/swserver" -addr 127.0.0.1:0 -spool "$smokedir/spool" -workers 1 \
    > "$smokedir/out.log" 2> "$smokedir/err.log" &
smoke_pid=$!
base=""
for _ in $(seq 1 100); do
    base=$(awk '/^swserver listening on /{print "http://" $4; exit}' "$smokedir/out.log")
    [ -n "$base" ] && break
    kill -0 "$smoke_pid" 2>/dev/null || { cat "$smokedir/err.log" >&2; echo "ci.sh: FAIL — swserver died on startup" >&2; exit 1; }
    sleep 0.1
done
[ -n "$base" ] || { echo "ci.sh: FAIL — swserver never announced its port" >&2; exit 1; }
job=$(curl -sf -X POST "$base/jobs" -d '{"test_case":5,"level":2,"steps":20,"report_every":5}' \
      | sed -n 's/.*"id": "\(j-[0-9a-f]*\)".*/\1/p')
[ -n "$job" ] || { echo "ci.sh: FAIL — job submission returned no id" >&2; exit 1; }
state=""
for _ in $(seq 1 300); do
    state=$(curl -sf "$base/jobs/$job" | sed -n 's/.*"state": "\([a-z]*\)".*/\1/p')
    [ "$state" = completed ] && break
    case "$state" in failed|canceled) break ;; esac
    sleep 0.1
done
[ "$state" = completed ] || { echo "ci.sh: FAIL — smoke job ended in state '$state'" >&2; exit 1; }
curl -sf "$base/jobs/$job/events?follow=0" | grep -q '"type":"diag"' \
    || { echo "ci.sh: FAIL — event stream has no diagnostics" >&2; exit 1; }
curl -sf "$base/metrics" | grep -q '^serve_jobs_completed_total 1$' \
    || { echo "ci.sh: FAIL — /metrics does not count the completed job" >&2; exit 1; }
kill -TERM "$smoke_pid"
wait "$smoke_pid" || { echo "ci.sh: FAIL — swserver did not drain cleanly on SIGTERM" >&2; exit 1; }
echo "swserver smoke OK ($job completed, metrics scraped, drained)"

echo "== swcluster smoke (2 workers, kill -9 one mid-job, steal, federated metrics) =="
go build -o "$smokedir/swcluster" ./cmd/swcluster
"$smokedir/swcluster" -addr 127.0.0.1:0 -spool "$smokedir/cspool" \
    -heartbeat 200ms -evict-after 1s \
    > "$smokedir/cout.log" 2> "$smokedir/cerr.log" &
cluster_pid=$!
cbase=""
for _ in $(seq 1 100); do
    cbase=$(awk '/^swcluster listening on /{print "http://" $4; exit}' "$smokedir/cout.log")
    [ -n "$cbase" ] && break
    kill -0 "$cluster_pid" 2>/dev/null || { cat "$smokedir/cerr.log" >&2; echo "ci.sh: FAIL — swcluster died on startup" >&2; exit 1; }
    sleep 0.1
done
[ -n "$cbase" ] || { echo "ci.sh: FAIL — swcluster never announced its port" >&2; exit 1; }
worker_pids=""
for w in w1 w2; do
    "$smokedir/swserver" -addr 127.0.0.1:0 -spool "$smokedir/spool-$w" -workers 1 \
        -register "$cbase" -name "$w" \
        > "$smokedir/$w.out.log" 2> "$smokedir/$w.err.log" &
    worker_pids="$worker_pids $w:$!"
done
registered=""
for _ in $(seq 1 100); do
    registered=$(curl -sf "$cbase/cluster/workers" | grep -c '"name": "w[12]"' || true)
    [ "$registered" = 2 ] && break
    sleep 0.1
done
[ "$registered" = 2 ] || { echo "ci.sh: FAIL — workers never registered with the coordinator" >&2; exit 1; }
cjob=$(curl -sf -X POST "$cbase/jobs" \
       -d '{"test_case":5,"level":2,"steps":40,"report_every":4,"checkpoint_every":4,"step_delay_ms":50,"ensemble":4}' \
       | sed -n 's/.*"id": "\(c-[0-9a-f]*\)".*/\1/p')
[ -n "$cjob" ] || { echo "ci.sh: FAIL — cluster submission returned no id" >&2; exit 1; }
# Wait until the trajectory is past its first durable checkpoint (so the
# coordinator has a mirror), then identify and SIGKILL the assigned worker.
victim=""
for _ in $(seq 1 300); do
    status=$(curl -sf "$cbase/jobs/$cjob")
    steps_done=$(printf '%s' "$status" | sed -n 's/.*"steps_done": \([0-9]*\).*/\1/p')
    cstate=$(printf '%s' "$status" | sed -n 's/.*"state": "\([a-z]*\)".*/\1/p')
    case "$cstate" in completed|failed|canceled)
        echo "ci.sh: FAIL — cluster job ended '$cstate' before the kill" >&2; exit 1 ;; esac
    if [ "${steps_done:-0}" -gt 4 ]; then
        victim=$(printf '%s' "$status" | sed -n 's/.*"worker": "\(w[12]\)".*/\1/p')
        break
    fi
    sleep 0.1
done
[ -n "$victim" ] || { echo "ci.sh: FAIL — cluster job never passed its first checkpoint" >&2; exit 1; }
sleep 0.5   # one more heartbeat so the mirror covers the latest checkpoint
victim_pid=$(printf '%s' "$worker_pids" | tr ' ' '\n' | sed -n "s/^$victim://p")
kill -9 "$victim_pid"
echo "killed worker $victim (pid $victim_pid) mid-job; waiting for the steal"
cstate=""
for _ in $(seq 1 600); do
    cstate=$(curl -sf "$cbase/jobs/$cjob" | sed -n 's/.*"state": "\([a-z]*\)".*/\1/p')
    [ "$cstate" = completed ] && break
    case "$cstate" in failed|canceled) break ;; esac
    sleep 0.1
done
[ "$cstate" = completed ] || { echo "ci.sh: FAIL — stolen job ended in state '$cstate'" >&2; exit 1; }
steals=$(curl -sf "$cbase/jobs/$cjob" | sed -n 's/.*"steals": \([0-9]*\).*/\1/p')
[ "${steals:-0}" -ge 1 ] || { echo "ci.sh: FAIL — job completed without a recorded steal" >&2; exit 1; }
fed=$(curl -sf "$cbase/metrics")
printf '%s\n' "$fed" | grep -q '^cluster_jobs_stolen_total 1$' \
    || { echo "ci.sh: FAIL — federated metrics missing cluster_jobs_stolen_total 1" >&2; exit 1; }
printf '%s\n' "$fed" | grep -q '^cluster_w_w[12]_serve_jobs_completed_total 1$' \
    || { echo "ci.sh: FAIL — federated metrics missing per-worker completion count" >&2; exit 1; }
printf '%s\n' "$fed" | grep -q '^cluster_total_serve_jobs_completed_total 1$' \
    || { echo "ci.sh: FAIL — federated metrics missing cluster totals" >&2; exit 1; }
for entry in $worker_pids; do kill -9 "${entry#*:}" 2>/dev/null || true; done
kill -TERM "$cluster_pid" 2>/dev/null || true
wait "$cluster_pid" 2>/dev/null || true
echo "swcluster smoke OK ($cjob stolen from $victim and completed, federation scraped)"

echo "== coverage floor =="
total=$(go tool cover -func=coverage.out | awk '/^total:/ { sub(/%/, "", $3); print $3 }')
floor=$(cat scripts/coverage_baseline.txt)
echo "total coverage ${total}% (floor ${floor}%)"
awk -v t="$total" -v f="$floor" 'BEGIN { exit !(t+0 >= f+0) }' || {
    echo "ci.sh: FAIL — coverage ${total}% fell below the recorded floor ${floor}%" >&2
    echo "       (scripts/coverage_baseline.txt; raise it when coverage durably improves)" >&2
    exit 1
}

echo "ci.sh: all checks passed"
