#!/usr/bin/env bash
# Canonical repository check: vet, build, and the full test suite under the
# race detector. CI and pre-commit hooks should run exactly this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "ci.sh: all checks passed"
