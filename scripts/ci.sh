#!/usr/bin/env bash
# Canonical repository check: vet, build, the full test suite under the race
# detector with a coverage profile, the differential-conformance matrix, and
# a coverage floor. CI and pre-commit hooks should run exactly this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race (runtime + solver focus) =="
# The compiled-plan step and the pool runtime are the concurrency hot spots:
# fail fast on them before the full (slower) coverage run below.
go test -race ./internal/par/... ./internal/sw/...

echo "== go test -race (with coverage) =="
go test -race -coverprofile=coverage.out -coverpkg=./... ./...

echo "== conformance matrix (cmd/conformance) =="
# Every execution strategy against the serial baseline: the named cases plus
# 20 seeded random cases on a small mesh, ending with the perturbation
# self-check. Non-zero exit on any divergence.
go run ./cmd/conformance -level 2 -steps 2 -random 20

echo "== swserver smoke (submit, poll, metrics, drain) =="
smokedir=$(mktemp -d)
trap 'rm -rf "$smokedir"' EXIT
go build -o "$smokedir/swserver" ./cmd/swserver
"$smokedir/swserver" -addr 127.0.0.1:0 -spool "$smokedir/spool" -workers 1 \
    > "$smokedir/out.log" 2> "$smokedir/err.log" &
smoke_pid=$!
base=""
for _ in $(seq 1 100); do
    base=$(awk '/^swserver listening on /{print "http://" $4; exit}' "$smokedir/out.log")
    [ -n "$base" ] && break
    kill -0 "$smoke_pid" 2>/dev/null || { cat "$smokedir/err.log" >&2; echo "ci.sh: FAIL — swserver died on startup" >&2; exit 1; }
    sleep 0.1
done
[ -n "$base" ] || { echo "ci.sh: FAIL — swserver never announced its port" >&2; exit 1; }
job=$(curl -sf -X POST "$base/jobs" -d '{"test_case":5,"level":2,"steps":20,"report_every":5}' \
      | sed -n 's/.*"id": "\(j-[0-9a-f]*\)".*/\1/p')
[ -n "$job" ] || { echo "ci.sh: FAIL — job submission returned no id" >&2; exit 1; }
state=""
for _ in $(seq 1 300); do
    state=$(curl -sf "$base/jobs/$job" | sed -n 's/.*"state": "\([a-z]*\)".*/\1/p')
    [ "$state" = completed ] && break
    case "$state" in failed|canceled) break ;; esac
    sleep 0.1
done
[ "$state" = completed ] || { echo "ci.sh: FAIL — smoke job ended in state '$state'" >&2; exit 1; }
curl -sf "$base/jobs/$job/events?follow=0" | grep -q '"type":"diag"' \
    || { echo "ci.sh: FAIL — event stream has no diagnostics" >&2; exit 1; }
curl -sf "$base/metrics" | grep -q '^serve_jobs_completed_total 1$' \
    || { echo "ci.sh: FAIL — /metrics does not count the completed job" >&2; exit 1; }
kill -TERM "$smoke_pid"
wait "$smoke_pid" || { echo "ci.sh: FAIL — swserver did not drain cleanly on SIGTERM" >&2; exit 1; }
echo "swserver smoke OK ($job completed, metrics scraped, drained)"

echo "== coverage floor =="
total=$(go tool cover -func=coverage.out | awk '/^total:/ { sub(/%/, "", $3); print $3 }')
floor=$(cat scripts/coverage_baseline.txt)
echo "total coverage ${total}% (floor ${floor}%)"
awk -v t="$total" -v f="$floor" 'BEGIN { exit !(t+0 >= f+0) }' || {
    echo "ci.sh: FAIL — coverage ${total}% fell below the recorded floor ${floor}%" >&2
    echo "       (scripts/coverage_baseline.txt; raise it when coverage durably improves)" >&2
    exit 1
}

echo "ci.sh: all checks passed"
