#!/usr/bin/env bash
# Perf gate: diff the step-kernel benchmarks between the two newest recorded
# benchmark summaries (BENCH_pr*.json, ordered by PR number) and fail on a
# regression of the hot-path step kernels — StepPlan, StepTaskPlan and
# StepFast32 ns/op at the reference level — beyond the allowed slack.
#
#   scripts/benchdiff.sh                 # newest two BENCH_pr*.json
#   scripts/benchdiff.sh OLD.json NEW.json
#
#   BENCH_DIFF_MAX   allowed regression in percent (default 10)
#   BENCH_DIFF_REF   reference benchmark sublevel  (default 10242cells)
#
# A benchmark present only in the NEW file is fine (a new column); one that
# disappears from NEW while recorded in OLD fails the gate — losing the
# measurement is how a regression hides.
set -euo pipefail
cd "$(dirname "$0")/.."

max=${BENCH_DIFF_MAX:-10}
ref=${BENCH_DIFF_REF:-10242cells}

old=${1:-}
new=${2:-}
if [ -z "$new" ]; then
    # shellcheck disable=SC2012
    files=$(ls BENCH_pr*.json 2>/dev/null | sort -V | tail -n 2)
    count=$(printf '%s\n' "$files" | grep -c . || true)
    if [ "$count" -lt 2 ]; then
        echo "benchdiff.sh: fewer than two BENCH_pr*.json files — nothing to diff, OK"
        exit 0
    fi
    old=$(printf '%s\n' "$files" | head -n 1)
    new=$(printf '%s\n' "$files" | tail -n 1)
fi
echo "benchdiff.sh: $old -> $new (max +${max}% on ns/op, reference $ref)"

fail=0
for bench in "BenchmarkStepPlan/$ref" "BenchmarkStepTaskPlan/$ref" "BenchmarkStepFast32/$ref"; do
    o=$(jq -r --arg k "$bench" '.[$k].ns_per_op // empty' "$old")
    n=$(jq -r --arg k "$bench" '.[$k].ns_per_op // empty' "$new")
    if [ -z "$o" ]; then
        echo "  $bench: not recorded in $old — skipped"
        continue
    fi
    if [ -z "$n" ]; then
        echo "  $bench: recorded in $old but MISSING from $new — FAIL"
        fail=1
        continue
    fi
    # Integer-safe percent delta via awk (ns_per_op may be fractional).
    verdict=$(awk -v o="$o" -v n="$n" -v max="$max" 'BEGIN {
        pct = (n - o) / o * 100
        printf "%+.1f%%", pct
        exit !(pct <= max)
    }') || { fail=1; verdict="$verdict REGRESSION"; }
    echo "  $bench: $o -> $n ns/op ($verdict)"
done

if [ "$fail" -ne 0 ]; then
    echo "benchdiff.sh: FAIL — step kernels regressed beyond ${max}% (or lost their measurement)" >&2
    exit 1
fi
echo "benchdiff.sh: OK"
