#!/usr/bin/env bash
# Run the repository benchmarks and emit a machine-readable summary,
# BENCH_pr10.json: { "<benchmark>": {"ns_per_op":…, "allocs_per_op":…,
# "bytes_per_op":…}, …, "ladder": {…}, "dist_strong_scaling": […] }. The
# BenchmarkClusterEnsemble pair (1 vs 2 workers) additionally reports
# member-steps/s — the cluster ensemble throughput scaling number — the
# "ladder" key is the cmd/bigmesh Table-III scaling report
# (n=BENCH_LADDER_MIN..MAX icosahedral meshes, serial vs plan vs taskplan
# vs float32 seconds/step with the task scheduler's steal/idle telemetry,
# plus the SFC-reorder columns: renumbered plan/fast32 times
# and the mean neighbor-index distance before/after renumbering), and
# "dist_strong_scaling" is the real multi-process curve:
# cmd/swrank wall-clock seconds/step for 1/2/4/8 local OS processes over
# TCP, overlapped, plus a blocking-exchange run at 4 processes for the
# overlap-vs-blocking comparison. Knobs:
#
#   BENCH_PATTERN      go test -bench regexp   (default: the sw step and
#                                               par pool micro-benchmarks
#                                               plus cluster throughput)
#   BENCH_TIME         go test -benchtime value (default 1x — one iteration,
#                                               enough for a smoke number;
#                                               use e.g. 2s for real timing)
#   BENCH_OUT          output path             (default BENCH_pr10.json)
#   BENCH_LADDER       0 to skip the big-mesh ladder (default: run it)
#   BENCH_LADDER_MIN   first ladder level      (default 6, 40962 cells)
#   BENCH_LADDER_MAX   last ladder level       (default 9, 2621442 cells)
#   BENCH_LADDER_STEPS timed steps per mode    (default 2)
#   BENCH_LADDER_REORDER 0 to skip the reorder columns (default: measure)
#   BENCH_DIST         0 to skip the dist strong-scaling sweep (default: run)
#   BENCH_DIST_LEVEL   dist sweep mesh level   (default 7, 163842 cells)
#   BENCH_DIST_STEPS   timed steps per config  (default 5)
#   BENCH_DIST_PROCS   process counts to sweep (default "1 2 4 8")
set -euo pipefail
cd "$(dirname "$0")/.."

pattern=${BENCH_PATTERN:-'BenchmarkStepSerial|BenchmarkStepThreaded|BenchmarkStepPlan|BenchmarkStepTaskPlan|BenchmarkStepFast32|BenchmarkPoolForOverhead|BenchmarkRegionFusion|BenchmarkReduction|BenchmarkBarrier|BenchmarkDispatchOverhead|BenchmarkDynamicChunkFloor|BenchmarkTaskGraphOverhead|BenchmarkClusterEnsemble'}
benchtime=${BENCH_TIME:-1x}
out=${BENCH_OUT:-BENCH_pr10.json}

raw=$(mktemp)
bindir=""
trap 'rm -f "$raw"; [ -n "$bindir" ] && rm -rf "$bindir"' EXIT

echo "== go test -bench ($pattern, benchtime=$benchtime) =="
go test -run '^$' -bench "$pattern" -benchmem -benchtime "$benchtime" \
    ./internal/sw ./internal/par ./internal/reduction ./internal/cluster | tee "$raw"

# Parse `BenchmarkName-N  iters  ns/op  [extra unit] ... B/op  allocs/op`
# lines into JSON (custom b.ReportMetric units like member-steps/s ride
# along under their unit name).
awk '
BEGIN { print "{"; n = 0 }
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    ns = ""; bytes = ""; allocs = ""; msteps = ""
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op")          ns = $i
        if ($(i+1) == "B/op")           bytes = $i
        if ($(i+1) == "allocs/op")      allocs = $i
        if ($(i+1) == "member-steps/s") msteps = $i
    }
    if (ns == "") next
    if (n++) printf ",\n"
    printf "  \"%s\": {\"ns_per_op\": %s", name, ns
    if (bytes != "")  printf ", \"bytes_per_op\": %s", bytes
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    if (msteps != "") printf ", \"member_steps_per_s\": %s", msteps
    printf "}"
}
END { print "\n}" }
' "$raw" > "$out"

count=$(grep -c 'ns_per_op' "$out" || true)
if [ "$count" -eq 0 ]; then
    echo "bench.sh: FAIL — no benchmark results parsed" >&2
    exit 1
fi
echo "bench.sh: wrote $count benchmark entries to $out"

if [ "${BENCH_LADDER:-1}" != 0 ]; then
    lmin=${BENCH_LADDER_MIN:-6}
    lmax=${BENCH_LADDER_MAX:-9}
    lsteps=${BENCH_LADDER_STEPS:-2}
    lreorder=-reorder
    [ "${BENCH_LADDER_REORDER:-1}" = 0 ] && lreorder=-reorder=false
    echo "== big-mesh ladder (levels $lmin..$lmax, $lsteps steps/mode, $lreorder) =="
    go run ./cmd/bigmesh -min-level "$lmin" -max-level "$lmax" \
        -steps "$lsteps" "$lreorder" -out "$out"
fi

if [ "${BENCH_DIST:-1}" != 0 ]; then
    dlevel=${BENCH_DIST_LEVEL:-7}
    dsteps=${BENCH_DIST_STEPS:-5}
    dprocs=${BENCH_DIST_PROCS:-"1 2 4 8"}
    echo "== dist strong scaling (level $dlevel, tc5, procs: $dprocs + blocking at 4) =="
    bindir=$(mktemp -d)
    go build -o "$bindir/swrank" ./cmd/swrank
    for p in $dprocs; do
        if [ "$p" = 1 ]; then
            "$bindir/swrank" -serial -case tc5 -level "$dlevel" -steps "$dsteps" \
                -bench-out "$out"
        else
            "$bindir/swrank" -launch "$p" -case tc5 -level "$dlevel" -steps "$dsteps" \
                -timeout 10m -bench-out "$out"
        fi
    done
    # The paper's overlap-vs-blocking comparison: same binary, same links,
    # same kernels — scheduling is the only difference.
    "$bindir/swrank" -launch 4 -overlap=false -case tc5 -level "$dlevel" \
        -steps "$dsteps" -timeout 10m -bench-out "$out"
    echo "bench.sh: dist strong-scaling entries appended to $out"
fi
