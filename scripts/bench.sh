#!/usr/bin/env bash
# Run the repository benchmarks and emit a machine-readable summary,
# BENCH_pr6.json: { "<benchmark>": {"ns_per_op":…, "allocs_per_op":…,
# "bytes_per_op":…}, … }. The BenchmarkClusterEnsemble pair (1 vs 2
# workers) additionally reports member-steps/s — the cluster ensemble
# throughput scaling number. Knobs:
#
#   BENCH_PATTERN   go test -bench regexp      (default: the sw step and
#                                               par pool micro-benchmarks
#                                               plus cluster throughput)
#   BENCH_TIME      go test -benchtime value   (default 1x — one iteration,
#                                               enough for a smoke number;
#                                               use e.g. 2s for real timing)
#   BENCH_OUT       output path                (default BENCH_pr6.json)
set -euo pipefail
cd "$(dirname "$0")/.."

pattern=${BENCH_PATTERN:-'BenchmarkStepSerial|BenchmarkStepThreaded|BenchmarkStepPlan|BenchmarkPoolForOverhead|BenchmarkRegionFusion|BenchmarkReduction|BenchmarkBarrier|BenchmarkDispatchOverhead|BenchmarkDynamicChunkFloor|BenchmarkClusterEnsemble'}
benchtime=${BENCH_TIME:-1x}
out=${BENCH_OUT:-BENCH_pr6.json}

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

echo "== go test -bench ($pattern, benchtime=$benchtime) =="
go test -run '^$' -bench "$pattern" -benchmem -benchtime "$benchtime" \
    ./internal/sw ./internal/par ./internal/reduction ./internal/cluster | tee "$raw"

# Parse `BenchmarkName-N  iters  ns/op  [extra unit] ... B/op  allocs/op`
# lines into JSON (custom b.ReportMetric units like member-steps/s ride
# along under their unit name).
awk '
BEGIN { print "{"; n = 0 }
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    ns = ""; bytes = ""; allocs = ""; msteps = ""
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op")          ns = $i
        if ($(i+1) == "B/op")           bytes = $i
        if ($(i+1) == "allocs/op")      allocs = $i
        if ($(i+1) == "member-steps/s") msteps = $i
    }
    if (ns == "") next
    if (n++) printf ",\n"
    printf "  \"%s\": {\"ns_per_op\": %s", name, ns
    if (bytes != "")  printf ", \"bytes_per_op\": %s", bytes
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    if (msteps != "") printf ", \"member_steps_per_s\": %s", msteps
    printf "}"
}
END { print "\n}" }
' "$raw" > "$out"

count=$(grep -c 'ns_per_op' "$out" || true)
if [ "$count" -eq 0 ]; then
    echo "bench.sh: FAIL — no benchmark results parsed" >&2
    exit 1
fi
echo "bench.sh: wrote $count benchmark entries to $out"
