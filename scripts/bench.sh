#!/usr/bin/env bash
# Run the repository benchmarks and emit a machine-readable summary,
# BENCH_pr7.json: { "<benchmark>": {"ns_per_op":…, "allocs_per_op":…,
# "bytes_per_op":…}, …, "ladder": {…} }. The BenchmarkClusterEnsemble pair
# (1 vs 2 workers) additionally reports member-steps/s — the cluster
# ensemble throughput scaling number — and the trailing "ladder" key is the
# cmd/bigmesh Table-III scaling report (n=BENCH_LADDER_MIN..MAX icosahedral
# meshes, serial vs plan vs float32 seconds/step). Knobs:
#
#   BENCH_PATTERN      go test -bench regexp   (default: the sw step and
#                                               par pool micro-benchmarks
#                                               plus cluster throughput)
#   BENCH_TIME         go test -benchtime value (default 1x — one iteration,
#                                               enough for a smoke number;
#                                               use e.g. 2s for real timing)
#   BENCH_OUT          output path             (default BENCH_pr7.json)
#   BENCH_LADDER       0 to skip the big-mesh ladder (default: run it)
#   BENCH_LADDER_MIN   first ladder level      (default 6, 40962 cells)
#   BENCH_LADDER_MAX   last ladder level       (default 9, 2621442 cells)
#   BENCH_LADDER_STEPS timed steps per mode    (default 2)
set -euo pipefail
cd "$(dirname "$0")/.."

pattern=${BENCH_PATTERN:-'BenchmarkStepSerial|BenchmarkStepThreaded|BenchmarkStepPlan|BenchmarkStepFast32|BenchmarkPoolForOverhead|BenchmarkRegionFusion|BenchmarkReduction|BenchmarkBarrier|BenchmarkDispatchOverhead|BenchmarkDynamicChunkFloor|BenchmarkClusterEnsemble'}
benchtime=${BENCH_TIME:-1x}
out=${BENCH_OUT:-BENCH_pr7.json}

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

echo "== go test -bench ($pattern, benchtime=$benchtime) =="
go test -run '^$' -bench "$pattern" -benchmem -benchtime "$benchtime" \
    ./internal/sw ./internal/par ./internal/reduction ./internal/cluster | tee "$raw"

# Parse `BenchmarkName-N  iters  ns/op  [extra unit] ... B/op  allocs/op`
# lines into JSON (custom b.ReportMetric units like member-steps/s ride
# along under their unit name).
awk '
BEGIN { print "{"; n = 0 }
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    ns = ""; bytes = ""; allocs = ""; msteps = ""
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op")          ns = $i
        if ($(i+1) == "B/op")           bytes = $i
        if ($(i+1) == "allocs/op")      allocs = $i
        if ($(i+1) == "member-steps/s") msteps = $i
    }
    if (ns == "") next
    if (n++) printf ",\n"
    printf "  \"%s\": {\"ns_per_op\": %s", name, ns
    if (bytes != "")  printf ", \"bytes_per_op\": %s", bytes
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    if (msteps != "") printf ", \"member_steps_per_s\": %s", msteps
    printf "}"
}
END { print "\n}" }
' "$raw" > "$out"

count=$(grep -c 'ns_per_op' "$out" || true)
if [ "$count" -eq 0 ]; then
    echo "bench.sh: FAIL — no benchmark results parsed" >&2
    exit 1
fi
echo "bench.sh: wrote $count benchmark entries to $out"

if [ "${BENCH_LADDER:-1}" != 0 ]; then
    lmin=${BENCH_LADDER_MIN:-6}
    lmax=${BENCH_LADDER_MAX:-9}
    lsteps=${BENCH_LADDER_STEPS:-2}
    echo "== big-mesh ladder (levels $lmin..$lmax, $lsteps steps/mode) =="
    go run ./cmd/bigmesh -min-level "$lmin" -max-level "$lmax" \
        -steps "$lsteps" -out "$out"
fi
